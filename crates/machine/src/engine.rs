//! The tick-based execution engine.
//!
//! [`Machine`] advances simulated time in fixed ticks (default 1 ms). In each
//! tick it:
//!
//! 1. determines which threads are runnable (alive, not parked at a barrier,
//!    outside migration dead time) and how each virtual core's time is
//!    shared among its runnable threads;
//! 2. applies SMT interference (busy sibling contexts shrink pipeline share);
//! 3. computes each thread's *effective* miss ratio: the phase's intrinsic
//!    ratio, inflated by shared-LLC pressure, post-migration cache warm-up,
//!    and deterministic burstiness noise;
//! 4. solves the shared memory system for achieved instruction rates
//!    ([`crate::contention::solve_memory`]);
//! 5. advances threads, clamping at phase boundaries, barrier points and
//!    program completion, and accumulates per-thread and per-core counters.
//!
//! Everything is deterministic given [`crate::config::MachineConfig::seed`]:
//! the only stochastic element, phase burstiness, is derived from a hash of
//! `(seed, thread, coarse tick)`, so a thread's intrinsic behaviour over time
//! does not depend on scheduling decisions — exactly the property needed to
//! compare schedulers fairly.

use crate::config::MachineConfig;
use crate::contention::{
    llc_inflation, llc_inflation_scaled, solve_memory_into, MemDemand, MemSolution, NumaWarmSolver,
};
use crate::ids::{AppId, BarrierId, DomainId, SimTime, ThreadId, VCoreId};
use crate::partition::PartitionPlan;
use crate::phase::Phase;
use crate::thread::{CoreCounters, ThreadCounters, ThreadSlab, ThreadSpec};
use std::collections::BTreeMap;

/// Notable events, for logs and tests.
#[derive(Debug, Clone, PartialEq)]
pub enum MachineEvent {
    /// A thread was spawned on a core.
    Spawned { thread: ThreadId, vcore: VCoreId },
    /// A thread migrated between cores.
    Migrated {
        thread: ThreadId,
        from: VCoreId,
        to: VCoreId,
        at: SimTime,
    },
    /// A thread retired all its instructions.
    Finished { thread: ThreadId, at: SimTime },
    /// The substrate load balancer moved a thread to an idle context.
    Balanced {
        thread: ThreadId,
        from: VCoreId,
        to: VCoreId,
        at: SimTime,
    },
    /// A transient stall was injected: the thread makes no progress until
    /// `until` (fault injection, see [`crate::faults`]).
    Stalled {
        thread: ThreadId,
        at: SimTime,
        until: SimTime,
    },
}

/// Coarseness of the burstiness noise: the pseudo-random miss-ratio
/// fluctuation is held constant for this many consecutive ticks, giving
/// bursts a realistic multi-millisecond duration.
const NOISE_WINDOW_TICKS: u64 = 8;

/// The simulated machine.
#[derive(Debug, Clone)]
pub struct Machine {
    cfg: MachineConfig,
    now: SimTime,
    tick_index: u64,
    /// Per-thread state, as structure-of-arrays slabs indexed by dense id.
    threads: ThreadSlab,
    vcore_counters: Vec<CoreCounters>,
    events: Vec<MachineEvent>,
    /// Barrier bookkeeping: group -> member thread ids.
    barrier_groups: BTreeMap<BarrierId, Vec<ThreadId>>,
    /// Moves performed by the substrate balancer (not counted as policy
    /// migrations).
    balancer_moves: u64,
    /// Which vcores sit in the balancer's "fast half" (frequency at or
    /// above the median). The topology is immutable after construction, so
    /// this is computed once instead of re-sorting frequencies every
    /// balance interval.
    balance_fast: Vec<bool>,
    /// True when every vcore lands on the same side of the median split
    /// (homogeneous machine): the balancer then only spreads doubled-up
    /// contexts.
    balance_homogeneous: bool,
    /// Per-thread burstiness-noise cache: the hashed unit draw is constant
    /// within a noise window (`tick_index / NOISE_WINDOW_TICKS`), so it is
    /// recomputed only when the window changes.
    noise_window: Vec<u64>,
    noise_unit: Vec<f64>,
    /// Dense ids of unfinished threads, ascending. Spawns append (ids are
    /// monotone), completions remove — so every per-tick sweep walks only
    /// the live population instead of everything ever spawned.
    alive: Vec<u32>,
    /// Physical core of each vcore, flattened from the (immutable)
    /// topology so the SMT-interference test is two array loads instead of
    /// a sibling-list walk.
    vcore_pcore: Vec<u32>,
    /// Frequency of each vcore, likewise flattened.
    vcore_freq: Vec<f64>,
    // Per-thread cached tick state, indexed by dense thread id. Written
    // by the rebuild stages, read by the advance stage; between rebuilds
    // of a thread's domain the entries stay exact (the boundary entry is
    // a decayed lower bound, re-walked exactly in the advance slow path).
    thread_phase: Vec<Phase>,
    thread_boundary: Vec<f64>,
    thread_eff_mr: Vec<f64>,
    thread_demand: Vec<MemDemand>,
    thread_rate: Vec<f64>,
    // Per-tick scratch buffers, reused so steady-state ticks allocate
    // nothing at all.
    scratch_runnable: Vec<usize>,
    scratch_demands: Vec<MemDemand>,
    scratch_solution: MemSolution,
    /// Demand vector of the last tick that actually ran the memory solver
    /// (single-controller machines). The solver is a pure function of the
    /// demands, so when a tick builds a bitwise-identical vector (the
    /// common steady state: same phases, same placement, same noise
    /// window) the previous solution is reused verbatim instead of
    /// re-running the fixed point.
    memo_demands: Vec<MemDemand>,
    /// Set by every state mutation (spawn, migration, stall, balancer
    /// move, completion, barrier traffic, phase-boundary crossing). While
    /// clear, the per-tick scratch state built by the last full tick still
    /// describes the machine exactly, so [`Machine::tick`] may take its
    /// quiescent fast path.
    state_dirty: bool,
    /// Noise window (`tick_index / NOISE_WINDOW_TICKS`) in which the
    /// scratch state was last rebuilt: a window change redraws burstiness
    /// noise, so quiescent ticks require the window to match.
    memo_window: u64,
    /// Simulated time at which the scratch state was last rebuilt. A dead
    /// time or cache warm-up expiring between this instant and the current
    /// tick changes runnability or an effective miss ratio without any
    /// event firing; the per-tick expiry scan detects exactly those
    /// *crossings* (an expiry still in the future leaves every cached
    /// branch outcome unchanged, so it forces nothing until it happens).
    cache_now: SimTime,
    scratch_vcore_load: Vec<u32>,
    scratch_pcore_load: Vec<u32>,
    scratch_vcore_busy: Vec<bool>,
    scratch_finished: Vec<ThreadId>,
    scratch_occupancy: Vec<u32>,
    scratch_moves: Vec<(ThreadId, VCoreId)>,
    // Multi-domain incremental-rebuild state (empty on single-controller
    // machines, whose tick path keeps the original single-solver
    // arithmetic verbatim).
    /// True when the machine has more than one NUMA domain and takes the
    /// per-domain incremental rebuild path.
    multi: bool,
    /// NUMA domain of each vcore, flattened from the immutable topology.
    vcore_domain: Vec<u32>,
    /// Run domains whose cached loads/LLC/demands no longer match the
    /// machine. Every event marks the domain(s) it touches; a rebuild
    /// refreshes exactly the marked ones.
    dirty_domains: Vec<bool>,
    /// Memory controllers whose demand sub-vector may have moved and must
    /// be re-presented to the warm solver (which skips bitwise-unchanged
    /// inputs outright).
    stale_ctrls: Vec<bool>,
    /// Alive thread ids currently *running* in each domain, ascending —
    /// the per-domain walk list of the incremental rebuild. Ascending
    /// order keeps every float accumulation in global thread order, which
    /// is what makes the partial rebuild bit-identical to a full one.
    run_members: Vec<Vec<u32>>,
    /// Alive thread ids *homed* to each controller, ascending — the
    /// presentation order of each controller's demand sub-vector.
    home_members: Vec<Vec<u32>>,
    /// Static per-domain vcore lists (for zeroing a dirty domain's loads).
    domain_vcores: Vec<Vec<u32>>,
    /// Static per-domain pcore lists (pcores never span domains).
    domain_pcores: Vec<Vec<u32>>,
    /// Per-domain shared-LLC inflation factor, persistent across ticks so
    /// clean domains keep theirs.
    domain_llc: Vec<f64>,
    /// Per-controller warm-started fixed-point solver (exact mode: reuses
    /// a solution only on bitwise-identical inputs, so results stay
    /// bit-identical to the cold reference).
    ctrl_solver: NumaWarmSolver,
    ctrl_scratch_demands: Vec<MemDemand>,
    ctrl_scratch_factors: Vec<f64>,
    ctrl_scratch_members: Vec<u32>,
    // LLC way-partitioning state (the second actuator). All of it is
    // inert until a non-empty plan is applied: while `partition_active`
    // is false the rebuild stages read none of these fields, keeping the
    // unpartitioned trajectory bit-identical to the pre-partitioning
    // engine.
    /// Currently applied plan (empty when unpartitioned).
    partition: PartitionPlan,
    /// True while a non-empty plan is in force.
    partition_active: bool,
    /// Bumped on every successful partition application or clear — the
    /// actuation layer verifies against this, the way migration actuation
    /// verifies against placement.
    partition_epoch: u64,
    /// Per-thread cluster id (`u32::MAX` = shared pool), dense thread
    /// index. Threads spawned after an application land in the shared
    /// pool until the next plan names them.
    thread_cluster: Vec<u32>,
    /// Capacity (MiB) of each cluster's slice; last slot = shared pool.
    cluster_capacity_mib: Vec<f64>,
    /// Per-rebuild per-slot runnable working-set sums and inflation
    /// factors (scratch; reused per domain on NUMA machines).
    scratch_cluster_ws: Vec<f64>,
    scratch_cluster_llc: Vec<f64>,
}

impl Machine {
    /// Create an empty machine.
    ///
    /// # Panics
    /// Panics if the configuration fails validation.
    pub fn new(cfg: MachineConfig) -> Self {
        cfg.validate().expect("invalid machine configuration");
        let n_vcores = cfg.topology.num_vcores();
        // Split vcores into the faster and slower halves by median
        // frequency, once: the topology never changes after construction.
        let balance_fast: Vec<bool> = if n_vcores == 0 {
            Vec::new()
        } else {
            let mut freqs: Vec<f64> = (0..n_vcores)
                .map(|v| cfg.topology.freq_of(VCoreId(v as u32)))
                .collect();
            freqs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let median = freqs[n_vcores / 2];
            (0..n_vcores)
                .map(|v| cfg.topology.freq_of(VCoreId(v as u32)) >= median)
                .collect()
        };
        let balance_homogeneous =
            balance_fast.iter().all(|&f| f) || !balance_fast.iter().any(|&f| f);
        let vcore_pcore: Vec<u32> = (0..n_vcores)
            .map(|v| cfg.topology.physical_of(VCoreId(v as u32)).0)
            .collect();
        let vcore_freq: Vec<f64> = (0..n_vcores)
            .map(|v| cfg.topology.freq_of(VCoreId(v as u32)))
            .collect();
        let num_domains = cfg.topology.num_domains();
        let multi = num_domains > 1;
        let vcore_domain: Vec<u32> = (0..n_vcores)
            .map(|v| cfg.topology.domain_of(VCoreId(v as u32)).0)
            .collect();
        let mut domain_vcores = vec![Vec::new(); if multi { num_domains } else { 0 }];
        let mut domain_pcores = vec![Vec::new(); if multi { num_domains } else { 0 }];
        if multi {
            for (v, &d) in vcore_domain.iter().enumerate() {
                domain_vcores[d as usize].push(v as u32);
            }
            for p in 0..cfg.topology.num_pcores() {
                let d = cfg.topology.domain_of_pcore(crate::ids::PCoreId(p as u32));
                domain_pcores[d.index()].push(p as u32);
            }
        }
        Machine {
            cfg,
            now: SimTime::ZERO,
            tick_index: 0,
            threads: ThreadSlab::default(),
            vcore_counters: vec![CoreCounters::default(); n_vcores],
            // The event log accumulates for the whole run. Pre-size it so
            // a Finished/Migrated push in steady state never pays an
            // amortised doubling (`tests/zero_alloc.rs`); unusually
            // migration-heavy runs fall back to O(log n) growth.
            events: Vec::with_capacity(1024),
            barrier_groups: BTreeMap::new(),
            balancer_moves: 0,
            balance_fast,
            balance_homogeneous,
            noise_window: Vec::new(),
            noise_unit: Vec::new(),
            alive: Vec::new(),
            vcore_pcore,
            vcore_freq,
            thread_phase: Vec::new(),
            thread_boundary: Vec::new(),
            thread_eff_mr: Vec::new(),
            thread_demand: Vec::new(),
            thread_rate: Vec::new(),
            scratch_runnable: Vec::new(),
            scratch_demands: Vec::new(),
            scratch_solution: MemSolution::empty(),
            memo_demands: Vec::new(),
            // Dirty until the first full tick builds the scratch state.
            state_dirty: true,
            memo_window: u64::MAX,
            cache_now: SimTime::ZERO,
            // Multi-domain loads persist across partial rebuilds, so they
            // are sized once here (single-domain machines resize their own
            // copies per rebuild, as before).
            scratch_vcore_load: if multi { vec![0; n_vcores] } else { Vec::new() },
            scratch_pcore_load: if multi {
                vec![0; domain_pcores.iter().map(Vec::len).sum()]
            } else {
                Vec::new()
            },
            scratch_vcore_busy: Vec::new(),
            scratch_finished: Vec::new(),
            scratch_occupancy: Vec::new(),
            scratch_moves: Vec::new(),
            multi,
            vcore_domain,
            dirty_domains: vec![false; if multi { num_domains } else { 0 }],
            stale_ctrls: vec![false; if multi { num_domains } else { 0 }],
            run_members: vec![Vec::new(); if multi { num_domains } else { 0 }],
            home_members: vec![Vec::new(); if multi { num_domains } else { 0 }],
            domain_vcores,
            domain_pcores,
            domain_llc: vec![1.0; if multi { num_domains } else { 0 }],
            ctrl_solver: NumaWarmSolver::new(num_domains),
            ctrl_scratch_demands: Vec::new(),
            ctrl_scratch_factors: Vec::new(),
            ctrl_scratch_members: Vec::new(),
            partition: PartitionPlan::new(),
            partition_active: false,
            partition_epoch: 0,
            thread_cluster: Vec::new(),
            cluster_capacity_mib: Vec::new(),
            scratch_cluster_ws: Vec::new(),
            scratch_cluster_llc: Vec::new(),
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Spawn a thread pinned to `vcore`. The thread's memory is homed to
    /// the NUMA domain of that core (first touch **at actual spawn time** —
    /// a mid-run arrival homes to wherever it first lands) and stays there
    /// for life: later migrations change where the thread *runs*, not where
    /// its misses are serviced. Thread ids are dense and stable: the `n`-th
    /// spawn — whether at `t = 0` or mid-run — is `ThreadId(n)`, and ids
    /// are never reused after retirement.
    ///
    /// # Panics
    /// Panics if the spec is invalid or the core id is out of range.
    pub fn spawn(&mut self, spec: ThreadSpec, vcore: VCoreId) -> ThreadId {
        spec.validate().expect("invalid thread spec");
        assert!(
            vcore.index() < self.cfg.topology.num_vcores(),
            "vcore {vcore} out of range"
        );
        let id = ThreadId(self.threads.len() as u32);
        if let Some(b) = &spec.barrier {
            self.barrier_groups.entry(b.group).or_default().push(id);
        }
        let home = self.cfg.topology.domain_of(vcore);
        // Placeholder cached state: the spawn dirties the thread's domain,
        // so the next rebuild overwrites these before the advance stage
        // ever reads them.
        let phase0 = *spec
            .program
            .phase_at(0.0)
            .expect("validated program has a first phase");
        self.threads.push(spec, vcore, home, self.now);
        self.noise_window.push(u64::MAX);
        self.noise_unit.push(0.0);
        self.thread_phase.push(phase0);
        self.thread_boundary.push(0.0);
        self.thread_eff_mr.push(0.0);
        self.thread_demand.push(MemDemand {
            base_time_per_instr: 0.0,
            miss_ratio: 0.0,
        });
        self.thread_rate.push(0.0);
        self.thread_cluster.push(u32::MAX);
        // Ids are monotone, so appending keeps the alive list ascending.
        self.alive.push(id.0);
        self.state_dirty = true;
        if self.multi {
            let d = self.vcore_domain[vcore.index()] as usize;
            self.run_members[d].push(id.0);
            self.home_members[home.index()].push(id.0);
            self.dirty_domains[d] = true;
            self.stale_ctrls[home.index()] = true;
            // Migrations shuffle membership lists mid-run: keep every list
            // (and the controller sub-vector scratch) sized for the whole
            // population so a binary-search insert never reallocates.
            let n = self.threads.len();
            for v in &mut self.run_members {
                v.reserve(n - v.len());
            }
            for v in &mut self.home_members {
                v.reserve(n - v.len());
            }
            self.ctrl_scratch_demands.reserve(n);
            self.ctrl_scratch_factors.reserve(n);
            self.ctrl_scratch_members.reserve(n);
        }
        // Every live thread can finish in the same tick, and the balancer
        // can move every live thread at once: keep those scratches sized
        // for the worst case now, so the first completion (which is also
        // what first wakes the balancer) never allocates mid-run.
        self.scratch_finished.reserve(self.threads.len());
        self.scratch_moves.reserve(self.threads.len());
        self.events
            .push(MachineEvent::Spawned { thread: id, vcore });
        id
    }

    /// Mark thread `i`'s current run domain dirty and its home controller
    /// stale (multi-domain machines; no-op otherwise). Every event that can
    /// change the thread's runnability, placement or demand must call this
    /// — for moves, once per endpoint.
    fn mark_thread_dirty(&mut self, i: usize) {
        if self.multi {
            let d = self.vcore_domain[self.threads.vcore[i].index()] as usize;
            self.dirty_domains[d] = true;
            self.stale_ctrls[self.threads.home_domain[i].index()] = true;
        }
    }

    /// Move thread `i` between per-domain run-membership lists, keeping
    /// both ascending (multi-domain machines only).
    fn move_run_member(&mut self, i: u32, from_d: usize, to_d: usize) {
        if !self.multi || from_d == to_d {
            return;
        }
        let list = &mut self.run_members[from_d];
        if let Ok(pos) = list.binary_search(&i) {
            list.remove(pos);
        }
        let list = &mut self.run_members[to_d];
        if let Err(pos) = list.binary_search(&i) {
            list.insert(pos, i);
        }
    }

    /// Move a thread to another virtual core. A move to the thread's current
    /// core is a no-op; a real move costs the configured dead time and cache
    /// warm-up and increments the thread's migration counter. A move that
    /// crosses NUMA domains refills its cache from a remote controller, so
    /// the warm-up window stretches by
    /// [`crate::config::MigrationConfig::cross_domain_warmup_factor`].
    pub fn migrate(&mut self, thread: ThreadId, to: VCoreId) {
        assert!(
            to.index() < self.cfg.topology.num_vcores(),
            "vcore {to} out of range"
        );
        let i = thread.index();
        if self.threads.finished(i) || self.threads.vcore[i] == to {
            return;
        }
        let from = self.threads.vcore[i];
        // Both endpoints change state: the source domain loses the thread's
        // load/LLC share, the destination gains it (once runnable again),
        // and the home controller's sub-vector moves either way.
        self.mark_thread_dirty(i);
        self.threads.vcore[i] = to;
        self.mark_thread_dirty(i);
        self.move_run_member(
            thread.0,
            self.vcore_domain[from.index()] as usize,
            self.vcore_domain[to.index()] as usize,
        );
        self.threads.dead_until[i] = self.now + SimTime::from_us(self.cfg.migration.dead_time_us);
        // Warm-up scales with the thread's current working set: a large
        // footprint takes proportionally longer to refill on the new core.
        let ws_mib = self.threads.specs[i]
            .program
            .phase_at(self.threads.retired[i])
            .map(|p| p.working_set_mib)
            .unwrap_or(0.0);
        let mut warmup = self.cfg.migration.warmup_us
            + (ws_mib * self.cfg.migration.warmup_us_per_mib as f64) as u64;
        if self.cfg.topology.domain_of(from) != self.cfg.topology.domain_of(to) {
            warmup = (warmup as f64 * self.cfg.migration.cross_domain_warmup_factor) as u64;
        }
        self.threads.warmup_until[i] =
            self.now + SimTime::from_us(self.cfg.migration.dead_time_us + warmup);
        self.threads.counters[i].migrations += 1;
        self.state_dirty = true;
        self.events.push(MachineEvent::Migrated {
            thread,
            from,
            to,
            at: self.now,
        });
    }

    /// Inject a transient stall: the thread makes no progress for `dur`
    /// from now (fault injection; extends, never shortens, any dead time
    /// already pending from a migration). No-op on finished threads.
    pub fn stall(&mut self, thread: ThreadId, dur: SimTime) {
        let now = self.now;
        let i = thread.index();
        if self.threads.finished(i) || dur == SimTime::ZERO {
            return;
        }
        let until = now + dur;
        if until <= self.threads.dead_until[i] {
            return;
        }
        self.threads.dead_until[i] = until;
        self.mark_thread_dirty(i);
        self.state_dirty = true;
        self.events.push(MachineEvent::Stalled {
            thread,
            at: now,
            until,
        });
    }

    /// Apply an LLC way-partitioning plan (the second actuator; see
    /// [`crate::partition`]). The plan replaces any previous one in full.
    /// Threads named by the plan contend only inside their cluster's
    /// slice (`capacity_mib * ways / total_ways`, identically in every
    /// NUMA domain — the plan models one machine-wide CAT configuration);
    /// unassigned threads share the leftover ways. Re-partitioning models
    /// nested CAT masks: a live thread is charged the migration-style
    /// cache warm-up (but no dead time — reprogramming CAT does not
    /// unschedule anyone) exactly when its slice moves or shrinks, while
    /// a pure capacity grow keeps its lines resident. Assignments naming
    /// finished or never-spawned threads are skipped. An empty plan lifts
    /// the partition (see [`Machine::clear_partition`]).
    ///
    /// Every successful application bumps [`Machine::partition_epoch`],
    /// which the actuation layer uses to verify the request landed.
    pub fn apply_partition(&mut self, plan: &PartitionPlan) -> Result<(), String> {
        let total_ways = self.cfg.llc.ways;
        plan.validate(total_ways)?;
        let n = self.threads.len();
        let mut new_cluster = vec![u32::MAX; n];
        for &(t, c) in &plan.assignments {
            let i = t.index();
            if i < n && !self.threads.finished(i) {
                new_cluster[i] = c;
            }
        }
        let now_active = !plan.is_empty();
        let total_cap = self.cfg.llc.capacity_mib;
        let tw = f64::from(total_ways);
        // Location labels for the warm-up decision: a cluster index, the
        // shared pool, or the whole unpartitioned cache. Two labels name
        // the same ways only when equal — except that a full-width slice
        // (capacity == total) is literally the whole cache under any
        // label, so moving between full-width slices evicts nothing.
        const LOC_FULL: u64 = u64::MAX;
        const LOC_SHARED: u64 = u32::MAX as u64;
        let old_shared_cap = total_cap * (f64::from(self.partition.shared_ways(total_ways)) / tw);
        let new_shared_cap = total_cap * (f64::from(plan.shared_ways(total_ways)) / tw);
        for idx in 0..self.alive.len() {
            let i = self.alive[idx] as usize;
            let (old_cap, old_loc) = if !self.partition_active {
                (total_cap, LOC_FULL)
            } else {
                match self.thread_cluster[i] {
                    u32::MAX => (old_shared_cap, LOC_SHARED),
                    c => (
                        total_cap * (f64::from(self.partition.cluster_ways[c as usize]) / tw),
                        u64::from(c),
                    ),
                }
            };
            let (new_cap, new_loc) = if !now_active {
                (total_cap, LOC_FULL)
            } else {
                match new_cluster[i] {
                    u32::MAX => (new_shared_cap, LOC_SHARED),
                    c => (
                        total_cap * (f64::from(plan.cluster_ways[c as usize]) / tw),
                        u64::from(c),
                    ),
                }
            };
            let warms = if old_loc == new_loc {
                new_cap < old_cap
            } else {
                !(old_cap == total_cap && new_cap == total_cap)
            };
            if warms {
                let ws_mib = self.threads.specs[i]
                    .program
                    .phase_at(self.threads.retired[i])
                    .map(|p| p.working_set_mib)
                    .unwrap_or(0.0);
                let warmup = self.cfg.migration.warmup_us
                    + (ws_mib * self.cfg.migration.warmup_us_per_mib as f64) as u64;
                let until = self.now + SimTime::from_us(warmup);
                // Extend, never shorten, a warm-up already pending.
                if until > self.threads.warmup_until[i] {
                    self.threads.warmup_until[i] = until;
                }
                self.mark_thread_dirty(i);
            }
        }
        self.thread_cluster = new_cluster;
        self.partition = plan.clone();
        self.partition_active = now_active;
        self.cluster_capacity_mib.clear();
        for &w in &plan.cluster_ways {
            self.cluster_capacity_mib
                .push(total_cap * (f64::from(w) / tw));
        }
        self.cluster_capacity_mib.push(new_shared_cap);
        self.partition_epoch += 1;
        // Every domain's contention changes shape: force a full rebuild
        // and make the warm solver forget its memoised fixed points.
        self.state_dirty = true;
        if self.multi {
            self.dirty_domains.iter_mut().for_each(|f| *f = true);
            self.stale_ctrls.iter_mut().for_each(|f| *f = true);
            self.ctrl_solver.invalidate();
        }
        Ok(())
    }

    /// Lift any applied partition: every thread contends for the whole
    /// cache again. Bumps the epoch like any application.
    pub fn clear_partition(&mut self) {
        self.apply_partition(&PartitionPlan::new())
            .expect("the empty plan always validates");
    }

    /// Number of successful partition applications (including clears) so
    /// far — the actuation layer's verification signal.
    pub fn partition_epoch(&self) -> u64 {
        self.partition_epoch
    }

    /// The currently applied plan (empty when unpartitioned).
    pub fn partition(&self) -> &PartitionPlan {
        &self.partition
    }

    /// True while a non-empty plan is in force.
    pub fn partition_active(&self) -> bool {
        self.partition_active
    }

    /// Simulated cache-occupancy counter (the Intel CMT analog exposed to
    /// schedulers): the thread's current-phase working set, capped at the
    /// capacity its partition slot lets it occupy. Zero once finished.
    pub fn llc_occupancy_mib(&self, thread: ThreadId) -> f64 {
        let i = thread.index();
        if self.threads.finished(i) {
            return 0.0;
        }
        let ws = self.threads.specs[i]
            .program
            .phase_at(self.threads.retired[i])
            .map(|p| p.working_set_mib)
            .unwrap_or(0.0);
        let cap = if self.partition_active {
            self.cluster_capacity_mib[self.cluster_slot(i)]
        } else {
            self.cfg.llc.capacity_mib
        };
        ws.min(cap)
    }

    /// Slot index of thread `i` under the current plan: its cluster, or
    /// the shared pool (last slot) when unassigned.
    #[inline]
    fn cluster_slot(&self, i: usize) -> usize {
        let c = self.thread_cluster[i];
        if c == u32::MAX {
            self.partition.num_clusters()
        } else {
            c as usize
        }
    }

    /// Per-slot inflation factors for the single-controller rebuild:
    /// accumulate runnable working sets per slot (ascending thread order,
    /// like the unpartitioned global sum) and inflate each against its
    /// slice capacity.
    fn cluster_llc_factors_runnable(&mut self) {
        self.scratch_cluster_ws.clear();
        self.scratch_cluster_ws
            .resize(self.partition.num_clusters() + 1, 0.0);
        for idx in 0..self.scratch_runnable.len() {
            let i = self.scratch_runnable[idx];
            let slot = self.cluster_slot(i);
            self.scratch_cluster_ws[slot] += self.thread_phase[i].working_set_mib;
        }
        self.fill_cluster_llc_factors();
    }

    /// Inflate each slot's accumulated working set against its slice
    /// capacity (an empty slot of zero capacity inflates by exactly 1 —
    /// `llc_inflation_scaled` maps 0/0 to no pressure).
    fn fill_cluster_llc_factors(&mut self) {
        self.scratch_cluster_llc.clear();
        for s in 0..self.scratch_cluster_ws.len() {
            self.scratch_cluster_llc.push(llc_inflation_scaled(
                self.scratch_cluster_ws[s],
                &self.cfg.llc,
                self.cluster_capacity_mib[s],
            ));
        }
    }

    /// All thread ids ever spawned.
    pub fn thread_ids(&self) -> impl Iterator<Item = ThreadId> + '_ {
        (0..self.threads.len() as u32).map(ThreadId)
    }

    /// Thread ids that have not yet finished.
    pub fn alive_threads(&self) -> Vec<ThreadId> {
        self.alive.iter().map(|&i| ThreadId(i)).collect()
    }

    /// Thread ids that have not yet finished, ascending, without
    /// allocating (the iterator form of [`Machine::alive_threads`]).
    pub fn alive_ids(&self) -> impl Iterator<Item = ThreadId> + '_ {
        self.alive.iter().map(|&i| ThreadId(i))
    }

    /// True if the thread has not yet finished (allocation-free — the
    /// per-thread form of [`Machine::alive_threads`]).
    pub fn is_alive(&self, thread: ThreadId) -> bool {
        !self.threads.finished(thread.index())
    }

    /// True once every thread has finished.
    pub fn all_done(&self) -> bool {
        !self.threads.is_empty() && self.alive.is_empty()
    }

    /// Number of spawned threads.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// The virtual core a thread is currently pinned to.
    pub fn vcore_of(&self, thread: ThreadId) -> VCoreId {
        self.threads.vcore[thread.index()]
    }

    /// The application a thread belongs to.
    pub fn app_of(&self, thread: ThreadId) -> AppId {
        self.threads.specs[thread.index()].app
    }

    /// The NUMA domain a thread's memory is homed to (fixed at spawn).
    pub fn home_domain_of(&self, thread: ThreadId) -> DomainId {
        self.threads.home_domain[thread.index()]
    }

    /// The application name a thread belongs to.
    pub fn app_name_of(&self, thread: ThreadId) -> &str {
        &self.threads.specs[thread.index()].app_name
    }

    /// Cumulative hardware counters of a thread.
    pub fn counters(&self, thread: ThreadId) -> ThreadCounters {
        self.threads.counters[thread.index()]
    }

    /// Cumulative counters of a virtual core.
    pub fn core_counters(&self, vcore: VCoreId) -> CoreCounters {
        self.vcore_counters[vcore.index()]
    }

    /// Completion time of a thread, if finished.
    pub fn finish_time(&self, thread: ThreadId) -> Option<SimTime> {
        self.threads.finished_at[thread.index()]
    }

    /// Machine time at which a thread was spawned (zero for threads spawned
    /// before the run started).
    pub fn spawn_time(&self, thread: ThreadId) -> SimTime {
        self.threads.spawned_at[thread.index()]
    }

    /// Virtual cores with no unfinished occupant, in id order — the free
    /// slots a mid-run arrival can be placed on (a retired thread frees its
    /// vcore the moment it finishes).
    pub fn idle_vcores(&self) -> Vec<VCoreId> {
        let mut idle = Vec::new();
        self.idle_vcores_into(&mut vec![false; 0], &mut idle);
        idle
    }

    /// Allocation-free form of [`Machine::idle_vcores`]: fills `idle` (in
    /// id order) using `occupied` as reusable scratch. Both buffers are
    /// cleared first; steady-state callers reuse their capacity.
    pub fn idle_vcores_into(&self, occupied: &mut Vec<bool>, idle: &mut Vec<VCoreId>) {
        occupied.clear();
        occupied.resize(self.cfg.topology.num_vcores(), false);
        for &i in &self.alive {
            occupied[self.threads.vcore[i as usize].index()] = true;
        }
        idle.clear();
        for (v, &o) in occupied.iter().enumerate() {
            if !o {
                idle.push(VCoreId(v as u32));
            }
        }
    }

    /// Fraction of a thread's instructions retired so far, in `[0, 1]`.
    pub fn progress_of(&self, thread: ThreadId) -> f64 {
        let i = thread.index();
        (self.threads.retired[i] / self.threads.specs[i].program.total_instructions).min(1.0)
    }

    /// Event log (spawns, migrations, completions).
    pub fn events(&self) -> &[MachineEvent] {
        &self.events
    }

    /// Total policy migrations across all threads (balancer moves are
    /// tracked separately in [`Machine::balancer_moves`]).
    pub fn total_migrations(&self) -> u64 {
        self.threads.counters.iter().map(|c| c.migrations).sum()
    }

    /// Moves performed by the substrate load balancer.
    pub fn balancer_moves(&self) -> u64 {
        self.balancer_moves
    }

    /// The OS's count-based idle balancer (see
    /// [`crate::config::BalanceConfig`]): when the fast and slow halves
    /// have unequal unfinished-thread counts and the lighter half has an
    /// empty context, move threads over. A balanced move costs cache
    /// warm-up (cold caches are physics) but no affinity dead time.
    fn balance(&mut self) {
        if self.balance_homogeneous {
            // Homogeneous: balance is about emptiness only; handled by the
            // shared-vcore spreading below.
            self.spread_shared_vcores();
            return;
        }
        let n = self.cfg.topology.num_vcores();
        self.scratch_occupancy.clear();
        self.scratch_occupancy.resize(n, 0);
        for &i in &self.alive {
            self.scratch_occupancy[self.threads.vcore[i as usize].index()] += 1;
        }
        let mut fast_load: u32 = (0..n)
            .filter(|&v| self.balance_fast[v])
            .map(|v| self.scratch_occupancy[v])
            .sum();
        let mut slow_load: u32 = (0..n)
            .filter(|&v| !self.balance_fast[v])
            .map(|v| self.scratch_occupancy[v])
            .sum();
        let min_imb = self.cfg.balance.min_imbalance;
        self.scratch_moves.clear();
        while fast_load.abs_diff(slow_load) >= min_imb.max(1) {
            let move_to_fast = slow_load > fast_load;
            // An empty target context on the lighter half.
            let target = (0..n)
                .find(|&v| self.balance_fast[v] == move_to_fast && self.scratch_occupancy[v] == 0)
                .map(|v| VCoreId(v as u32));
            let Some(target) = target else { break };
            // Candidate: a thread on the heavier half, preferring doubled-up
            // contexts, then the highest-occupancy context (deterministic
            // lowest thread id).
            let mut source: Option<(u32, u32, ThreadId)> = None;
            for &i in &self.alive {
                let v = self.threads.vcore[i as usize].index();
                if self.balance_fast[v] == move_to_fast {
                    continue;
                }
                let key = (self.scratch_occupancy[v], u32::MAX - i);
                if source.is_none_or(|(o, r, _)| key > (o, r)) {
                    source = Some((key.0, key.1, ThreadId(i)));
                }
            }
            let Some((_, _, thread)) = source else { break };
            self.scratch_occupancy[self.threads.vcore[thread.index()].index()] -= 1;
            self.scratch_occupancy[target.index()] += 1;
            if move_to_fast {
                fast_load += 1;
                slow_load -= 1;
            } else {
                fast_load -= 1;
                slow_load += 1;
            }
            self.scratch_moves.push((thread, target));
        }
        for k in 0..self.scratch_moves.len() {
            let (thread, target) = self.scratch_moves[k];
            self.balancer_move(thread, target);
        }
        self.spread_shared_vcores();
    }

    /// Within each half, move threads off doubled-up contexts onto empty
    /// ones (plain per-CPU balancing).
    fn spread_shared_vcores(&mut self) {
        let n = self.cfg.topology.num_vcores();
        self.scratch_occupancy.clear();
        self.scratch_occupancy.resize(n, 0);
        for &i in &self.alive {
            self.scratch_occupancy[self.threads.vcore[i as usize].index()] += 1;
        }
        self.scratch_moves.clear();
        for &i in &self.alive {
            let v = self.threads.vcore[i as usize].index();
            if self.scratch_occupancy[v] >= 2 {
                if let Some(empty) = (0..n).find(|&c| self.scratch_occupancy[c] == 0) {
                    self.scratch_occupancy[v] -= 1;
                    self.scratch_occupancy[empty] += 1;
                    self.scratch_moves
                        .push((ThreadId(i), VCoreId(empty as u32)));
                }
            }
        }
        for k in 0..self.scratch_moves.len() {
            let (thread, target) = self.scratch_moves[k];
            self.balancer_move(thread, target);
        }
    }

    /// Apply one balancer move: re-home the thread with cache warm-up but
    /// no affinity dead time, and without touching the policy migration
    /// counter.
    fn balancer_move(&mut self, thread: ThreadId, to: VCoreId) {
        let i = thread.index();
        if self.threads.finished(i) || self.threads.vcore[i] == to {
            return;
        }
        let from = self.threads.vcore[i];
        self.mark_thread_dirty(i);
        self.threads.vcore[i] = to;
        self.mark_thread_dirty(i);
        self.move_run_member(
            thread.0,
            self.vcore_domain[from.index()] as usize,
            self.vcore_domain[to.index()] as usize,
        );
        let ws_mib = self.threads.specs[i]
            .program
            .phase_at(self.threads.retired[i])
            .map(|p| p.working_set_mib)
            .unwrap_or(0.0);
        let mut warmup = self.cfg.migration.warmup_us
            + (ws_mib * self.cfg.migration.warmup_us_per_mib as f64) as u64;
        if self.cfg.topology.domain_of(from) != self.cfg.topology.domain_of(to) {
            warmup = (warmup as f64 * self.cfg.migration.cross_domain_warmup_factor) as u64;
        }
        self.threads.warmup_until[i] = self.now + SimTime::from_us(warmup);
        self.state_dirty = true;
        self.balancer_moves += 1;
        self.events.push(MachineEvent::Balanced {
            thread,
            from,
            to,
            at: self.now,
        });
    }

    /// Rebuild the full per-tick scratch state of a single-controller
    /// machine — stages 1–3 of the tick: the runnable walk, shared-LLC
    /// pressure, contention demands and the memory solution. Afterwards
    /// the cached per-thread state mirrors the machine exactly, so the
    /// dirty flag clears and quiescent ticks may reuse it; events from the
    /// advance stage or from between-tick actuation re-dirty it. The
    /// arithmetic (and its evaluation order) is unchanged from the
    /// original single-solver code, so paper-machine results stay
    /// bit-identical.
    fn rebuild_tick_state(&mut self, n_vcores: usize, window: u64) {
        // 1. Runnable threads, per-vcore and per-pcore occupancy, and each
        //    runnable thread's active phase: one combined walk per thread
        //    per tick, reused by every later stage (LLC pressure, demand
        //    build, the first boundary step, and the apki read). Only the
        //    alive list is swept, so a machine draining towards empty (or
        //    idling between open-system arrivals) pays per live thread,
        //    not per thread ever spawned.
        self.scratch_runnable.clear();
        self.scratch_vcore_load.clear();
        self.scratch_vcore_load.resize(n_vcores, 0);
        self.scratch_pcore_load.clear();
        self.scratch_pcore_load
            .resize(self.cfg.topology.num_pcores(), 0);
        for idx in 0..self.alive.len() {
            let i = self.alive[idx] as usize;
            if self.threads.runnable(i, self.now) {
                let (phase, boundary) = self.threads.specs[i]
                    .program
                    .phase_and_boundary(self.threads.retired[i])
                    .expect("runnable thread must have an active phase");
                self.scratch_runnable.push(i);
                self.thread_phase[i] = phase;
                self.thread_boundary[i] = boundary;
                let v = self.threads.vcore[i].index();
                self.scratch_vcore_load[v] += 1;
                self.scratch_pcore_load[self.vcore_pcore[v] as usize] += 1;
            }
        }

        if !self.scratch_runnable.is_empty() {
            // 2. + 3. SMT interference and shared-LLC pressure. The SMT
            // factor needs no pass of its own: a sibling context is busy
            // exactly when the physical core carries more load than the
            // vcore itself, so it is read off the load counts inside the
            // demand loop below. One LLC spans the whole chip (the paper's
            // testbed).
            let llc_factor = if self.partition_active {
                // Partitioned: per-slot sums and factors; the demand loop
                // reads them per thread and this global factor is unused.
                self.cluster_llc_factors_runnable();
                f64::NAN
            } else {
                let total_ws: f64 = self
                    .scratch_runnable
                    .iter()
                    .map(|&i| self.thread_phase[i].working_set_mib)
                    .sum();
                llc_inflation(total_ws, &self.cfg.llc)
            };

            // Effective per-thread miss ratios and pipeline times.
            self.scratch_demands.clear();
            for idx in 0..self.scratch_runnable.len() {
                let i = self.scratch_runnable[idx];
                let phase = self.thread_phase[i];
                let vcore = self.threads.vcore[i];
                let lf = if self.partition_active {
                    self.scratch_cluster_llc[self.cluster_slot(i)]
                } else {
                    llc_factor
                };
                let mut mr = phase.miss_ratio() * lf;
                let mut cpi = phase.cpi_exec;
                if self.now < self.threads.warmup_until[i] {
                    mr *= self.cfg.migration.warmup_miss_multiplier;
                    cpi *= self.cfg.migration.warmup_cpi_multiplier;
                }
                if phase.burstiness != 0.0 {
                    // The unit draw is a pure hash of (seed, thread,
                    // window); within a noise window the cached value is
                    // exact, so the splitmix64 finaliser runs once per
                    // window instead of every tick.
                    if self.noise_window[i] != window {
                        self.noise_window[i] = window;
                        self.noise_unit[i] = noise_unit(self.cfg.seed, i, window);
                    }
                    mr *= 1.0 + phase.burstiness * (2.0 * self.noise_unit[i] - 1.0);
                }
                mr = mr.clamp(0.0, 1.0);
                let v = vcore.index();
                let share = 1.0 / self.scratch_vcore_load[v] as f64;
                let freq = self.vcore_freq[v];
                let smt_factor = if self.scratch_pcore_load[self.vcore_pcore[v] as usize]
                    > self.scratch_vcore_load[v]
                {
                    self.cfg.smt.busy_share
                } else {
                    1.0
                };
                let base_time = cpi / (freq * share * smt_factor);
                self.thread_eff_mr[i] = mr;
                self.scratch_demands.push(MemDemand {
                    base_time_per_instr: base_time,
                    miss_ratio: mr,
                });
            }

            // 4. Memory system (into the reusable solution buffer).
            // A bitwise-unchanged demand vector reuses the previous
            // solution outright (`memo_demands` tracks the inputs of the
            // last real solve, whose outputs still sit in the solution
            // buffer) — identical inputs give identical outputs, so this
            // is a pure speedup.
            if self.scratch_demands != self.memo_demands {
                solve_memory_into(
                    &self.scratch_demands,
                    &self.cfg.memory,
                    &mut self.scratch_solution,
                );
                self.memo_demands.clone_from(&self.scratch_demands);
            }
            for (k, &i) in self.scratch_runnable.iter().enumerate() {
                self.thread_rate[i] = self.scratch_solution.rates[k];
            }
        }

        self.state_dirty = false;
        self.memo_window = window;
        self.cache_now = self.now;
    }

    /// Incremental multi-domain rebuild: refresh only the run domains
    /// marked dirty and re-present only the stale controllers to the warm
    /// solver. Cross-domain coupling is one-directional by construction —
    /// a thread's demand depends only on state *inside its run domain*
    /// (per-domain LLC slice, per-vcore/pcore loads, its own warm-up and
    /// noise), and a controller's solution depends only on the demands of
    /// the threads *homed* to it — so refreshing the marked subset
    /// reproduces what a full rebuild would compute, bit for bit:
    ///
    /// * every per-thread quantity is an independent pure function, so
    ///   clean-domain threads' cached values are already what a full
    ///   rebuild would recompute;
    /// * the only cross-thread float accumulation (a domain's working-set
    ///   sum) walks that domain's members in ascending thread order —
    ///   exactly the order in which the old global walk met them;
    /// * each controller's demand sub-vector is presented in ascending
    ///   thread order, exactly the partition order of the old
    ///   `solve_memory_numa_into`, and the warm solver in exact mode runs
    ///   the very same fixed point on it (skipping bitwise-unchanged
    ///   inputs, which is a pure speedup).
    fn rebuild_tick_state_multi(&mut self, window: u64) {
        let num_domains = self.cfg.topology.num_domains();
        // A window change redraws burstiness noise for every bursty
        // thread (and the first rebuild has nothing cached): refresh
        // everything.
        if window != self.memo_window {
            self.dirty_domains.iter_mut().for_each(|f| *f = true);
            self.stale_ctrls.iter_mut().for_each(|f| *f = true);
        }

        for d in 0..num_domains {
            if !self.dirty_domains[d] {
                continue;
            }
            // Stage 1 (per dirty domain): loads, phases and the domain's
            // shared-LLC slice, walking only this domain's members.
            for &v in &self.domain_vcores[d] {
                self.scratch_vcore_load[v as usize] = 0;
            }
            for &p in &self.domain_pcores[d] {
                self.scratch_pcore_load[p as usize] = 0;
            }
            if self.partition_active {
                self.scratch_cluster_ws.clear();
                self.scratch_cluster_ws
                    .resize(self.partition.num_clusters() + 1, 0.0);
            }
            let mut ws_sum = 0.0;
            for idx in 0..self.run_members[d].len() {
                let i = self.run_members[d][idx] as usize;
                if !self.threads.runnable(i, self.now) {
                    continue;
                }
                let (phase, boundary) = self.threads.specs[i]
                    .program
                    .phase_and_boundary(self.threads.retired[i])
                    .expect("runnable thread must have an active phase");
                self.thread_phase[i] = phase;
                self.thread_boundary[i] = boundary;
                let v = self.threads.vcore[i].index();
                self.scratch_vcore_load[v] += 1;
                self.scratch_pcore_load[self.vcore_pcore[v] as usize] += 1;
                ws_sum += phase.working_set_mib;
                if self.partition_active {
                    let slot = self.cluster_slot(i);
                    self.scratch_cluster_ws[slot] += phase.working_set_mib;
                }
            }
            if self.partition_active {
                self.fill_cluster_llc_factors();
            } else {
                self.domain_llc[d] = llc_inflation(ws_sum, &self.cfg.llc);
            }

            // Stage 2 (same domain, loads now final): effective miss
            // ratios and demands. Any thread whose demand is recomputed
            // may feed a different sub-vector to its home controller.
            let llc_factor = self.domain_llc[d];
            for idx in 0..self.run_members[d].len() {
                let i = self.run_members[d][idx] as usize;
                if !self.threads.runnable(i, self.now) {
                    continue;
                }
                let phase = self.thread_phase[i];
                let lf = if self.partition_active {
                    self.scratch_cluster_llc[self.cluster_slot(i)]
                } else {
                    llc_factor
                };
                let mut mr = phase.miss_ratio() * lf;
                let mut cpi = phase.cpi_exec;
                if self.now < self.threads.warmup_until[i] {
                    mr *= self.cfg.migration.warmup_miss_multiplier;
                    cpi *= self.cfg.migration.warmup_cpi_multiplier;
                }
                if phase.burstiness != 0.0 {
                    if self.noise_window[i] != window {
                        self.noise_window[i] = window;
                        self.noise_unit[i] = noise_unit(self.cfg.seed, i, window);
                    }
                    mr *= 1.0 + phase.burstiness * (2.0 * self.noise_unit[i] - 1.0);
                }
                mr = mr.clamp(0.0, 1.0);
                let v = self.threads.vcore[i].index();
                let share = 1.0 / self.scratch_vcore_load[v] as f64;
                let freq = self.vcore_freq[v];
                let smt_factor = if self.scratch_pcore_load[self.vcore_pcore[v] as usize]
                    > self.scratch_vcore_load[v]
                {
                    self.cfg.smt.busy_share
                } else {
                    1.0
                };
                let base_time = cpi / (freq * share * smt_factor);
                self.thread_eff_mr[i] = mr;
                self.thread_demand[i] = MemDemand {
                    base_time_per_instr: base_time,
                    miss_ratio: mr,
                };
                self.stale_ctrls[self.threads.home_domain[i].index()] = true;
            }
        }

        // Stage 3: re-present each stale controller's demand sub-vector
        // (runnable home members, ascending) to the warm solver and
        // scatter the achieved rates back. The solver memoises bitwise, so
        // a controller whose sub-vector did not actually move costs one
        // comparison instead of a fixed point.
        for c in 0..num_domains {
            if !self.stale_ctrls[c] {
                continue;
            }
            self.ctrl_scratch_demands.clear();
            self.ctrl_scratch_factors.clear();
            self.ctrl_scratch_members.clear();
            for idx in 0..self.home_members[c].len() {
                let i = self.home_members[c][idx] as usize;
                if !self.threads.runnable(i, self.now) {
                    continue;
                }
                let run_d = self.vcore_domain[self.threads.vcore[i].index()] as usize;
                self.ctrl_scratch_demands.push(self.thread_demand[i]);
                self.ctrl_scratch_factors.push(if run_d != c {
                    self.cfg.memory.remote_latency_factor
                } else {
                    1.0
                });
                self.ctrl_scratch_members.push(i as u32);
            }
            let (rates, _) = self.ctrl_solver.solve(
                c,
                &self.ctrl_scratch_demands,
                &self.ctrl_scratch_factors,
                &self.cfg.memory,
            );
            for (j, &i) in self.ctrl_scratch_members.iter().enumerate() {
                self.thread_rate[i as usize] = rates[j];
            }
        }

        self.dirty_domains.iter_mut().for_each(|f| *f = false);
        self.stale_ctrls.iter_mut().for_each(|f| *f = false);
        self.state_dirty = false;
        self.memo_window = window;
        self.cache_now = self.now;
    }

    /// Advance the machine by one tick.
    ///
    /// A tick runs in one of two modes, both producing **bit-identical**
    /// trajectories. A *full* tick rebuilds the runnable set, phase
    /// lookups, contention demands and the memory solution from scratch.
    /// A *quiescent* tick reuses all of that from the last full tick:
    /// between events a thread's phase, placement, warm-up status and
    /// burstiness draw are constant, so the only per-tick input that ages
    /// is each thread's distance to its next phase boundary — tracked as
    /// a decayed lower bound and re-walked exactly only when a tick could
    /// actually reach it (see the advance stage). Eligibility
    /// is conservative — every mutation (spawn, migration, stall,
    /// balancer move, completion, barrier traffic, phase-boundary
    /// crossing) marks the cached state dirty, and a pending dead-time or
    /// warm-up expiry, or a noise-window change, forces the full path.
    pub fn tick(&mut self) {
        // The OS balancer runs on its own coarse period. Its moves dirty
        // the cached state, so quiescence is judged after it runs.
        if self.cfg.balance.enabled
            && self
                .now
                .as_us()
                .is_multiple_of(self.cfg.balance.interval_us)
            && !self.threads.is_empty()
        {
            self.balance();
        }
        let dt_s = self.cfg.tick_us as f64 / 1e6;
        let n_vcores = self.cfg.topology.num_vcores();
        let window = self.tick_index / NOISE_WINDOW_TICKS;

        // Quiescent-tick eligibility. The expiry scan detects *crossings*:
        // a dead time or warm-up that ended between `cache_now` (when the
        // cached state was built) and this tick changes the runnable set
        // or an effective miss ratio without any event firing. An expiry
        // still in the future flips nothing yet — every cached branch
        // outcome (`now >= dead_until`, `now < warmup_until`) is constant
        // until the instant is actually crossed — so, unlike the previous
        // scheme, a pending expiry alone no longer forces a rebuild every
        // tick. Skipping the rebuild is bit-identical because rebuilding
        // is idempotent: with no input changed it would recompute exactly
        // the cached values.
        let mut crossed = false;
        if self.multi {
            // On a NUMA machine the crossing is also an *event*: mark the
            // thread's run domain and home controller so the partial
            // rebuild refreshes them.
            for idx in 0..self.alive.len() {
                let i = self.alive[idx] as usize;
                let dead = self.threads.dead_until[i];
                let warm = self.threads.warmup_until[i];
                if (dead > self.cache_now && dead <= self.now)
                    || (warm > self.cache_now && warm <= self.now)
                {
                    crossed = true;
                    let d = self.vcore_domain[self.threads.vcore[i].index()] as usize;
                    self.dirty_domains[d] = true;
                    self.stale_ctrls[self.threads.home_domain[i].index()] = true;
                }
            }
        } else {
            crossed = self.alive.iter().any(|&i| {
                let i = i as usize;
                let dead = self.threads.dead_until[i];
                let warm = self.threads.warmup_until[i];
                (dead > self.cache_now && dead <= self.now)
                    || (warm > self.cache_now && warm <= self.now)
            });
        }
        let quiescent = !self.state_dirty && window == self.memo_window && !crossed;

        if !quiescent {
            if self.multi {
                self.rebuild_tick_state_multi(window);
            } else {
                self.rebuild_tick_state(n_vcores, window);
            }
        }

        {
            let multi = self.multi;
            // 5. Advance threads (the alive list is ascending and the
            // runnable set cannot have changed since the last rebuild, so
            // this meets exactly the rebuilt threads, in rebuild order).
            self.scratch_vcore_busy.clear();
            self.scratch_vcore_busy.resize(n_vcores, false);
            for idx in 0..self.alive.len() {
                let i = self.alive[idx] as usize;
                if !self.threads.runnable(i, self.now) {
                    continue;
                }
                let rate = self.thread_rate[i];
                let mr = self.thread_eff_mr[i];
                let vcore = self.threads.vcore[i];
                let freq = self.vcore_freq[vcore.index()];
                let retired = self.threads.retired[i];
                let next_barrier_at = self.threads.next_barrier_at[i];

                // `thread_boundary[i]` is a lower bound on the distance
                // to the thread's next phase boundary: exact right after
                // its domain's rebuild, then decayed by each tick's
                // progress (the decay's f64 rounding is absorbed by a
                // one-instruction cushion in the test below). When the
                // whole tick's progress fits strictly inside that bound
                // and short of the barrier, the exact walk below would
                // take its single-slice branch with the very same
                // `advance`, so the walk is skipped outright.
                let to_barrier0 = (next_barrier_at - retired).max(0.0);
                let possible0 = rate * dt_s;
                let mut advance = 0.0;
                let mut hit_barrier = false;
                if rate > 0.0
                    && possible0 < self.thread_boundary[i] - 1.0
                    && possible0 < to_barrier0
                {
                    advance = possible0;
                } else {
                    // Near a boundary, a barrier, or stalled: run the exact
                    // multi-slice advance. The cached bound may have
                    // decayed, so the true distance is re-walked first —
                    // `instructions_to_boundary` returns the same value a
                    // rebuild's phase lookup computes (a property pinned by
                    // a unit test in `phase.rs`), so re-walking is always
                    // exact regardless of how stale the bound was.
                    self.thread_boundary[i] = self.threads.specs[i]
                        .program
                        .instructions_to_boundary(retired);
                    // Advance through as many phase boundaries as the tick
                    // allows (the achieved rate is held constant within the
                    // tick; phase boundaries only clamp barrier/completion
                    // crossings exactly). The first iteration's boundary came
                    // free with the walk above.
                    let mut time_left = dt_s;
                    let mut first_boundary = Some(self.thread_boundary[i]);
                    for _ in 0..64 {
                        if time_left <= 0.0 || rate <= 0.0 {
                            break;
                        }
                        let pos = retired + advance;
                        let to_boundary = match first_boundary.take() {
                            Some(b) => b,
                            None => self.threads.specs[i].program.instructions_to_boundary(pos),
                        };
                        let to_barrier = (next_barrier_at - pos).max(0.0);
                        let limit = to_boundary.min(to_barrier);
                        if limit <= 0.0 {
                            hit_barrier = to_barrier <= 0.0 && to_barrier <= to_boundary;
                            break;
                        }
                        let possible = rate * time_left;
                        if possible < limit {
                            advance += possible;
                            time_left = 0.0;
                        } else {
                            advance += limit;
                            time_left -= limit / rate;
                            if to_barrier <= to_boundary {
                                hit_barrier = true;
                                break;
                            }
                        }
                    }
                }

                let apki = self.thread_phase[i].apki;
                self.threads.retired[i] = retired + advance;
                let c = &mut self.threads.counters[i];
                c.instructions += advance;
                c.llc_misses += advance * mr;
                c.llc_accesses += advance * (apki / 1000.0).max(mr);
                c.cycles += freq * dt_s;
                c.busy_us += self.cfg.tick_us;
                if multi && self.cfg.topology.domain_of(vcore) != self.threads.home_domain[i] {
                    self.threads.counters[i].remote_us += self.cfg.tick_us;
                }
                self.scratch_vcore_busy[vcore.index()] = true;
                self.vcore_counters[vcore.index()].accesses +=
                    advance * mr * self.cfg.memory.prefetch_factor;

                // Reaching (or crossing) a phase boundary changes the next
                // tick's phase lookup, so the cached phases cannot be
                // reused past it.
                if advance >= self.thread_boundary[i] {
                    self.state_dirty = true;
                    self.mark_thread_dirty(i);
                }
                // Decay the boundary bound by this tick's progress (see
                // above; a rebuild restores exactness).
                self.thread_boundary[i] -= advance;
                if self.threads.retired[i] >= self.threads.specs[i].program.total_instructions {
                    self.threads.finished_at[i] =
                        Some(self.now + SimTime::from_us(self.cfg.tick_us));
                    self.threads.at_barrier[i] = false;
                    self.state_dirty = true;
                    if multi {
                        // The departure changes its domain's loads and its
                        // controller's membership; drop it from both walk
                        // lists now that it can never run again.
                        self.mark_thread_dirty(i);
                        let d = self.vcore_domain[vcore.index()] as usize;
                        if let Ok(pos) = self.run_members[d].binary_search(&(i as u32)) {
                            self.run_members[d].remove(pos);
                        }
                        let h = self.threads.home_domain[i].index();
                        if let Ok(pos) = self.home_members[h].binary_search(&(i as u32)) {
                            self.home_members[h].remove(pos);
                        }
                    }
                } else if hit_barrier {
                    self.threads.at_barrier[i] = true;
                    self.state_dirty = true;
                    self.mark_thread_dirty(i);
                }
            }
            for (v, busy) in self.scratch_vcore_busy.iter().enumerate() {
                if *busy {
                    self.vcore_counters[v].busy_us += self.cfg.tick_us;
                }
            }
        }

        // Barrier release: a group proceeds when every alive member waits.
        // Membership state only moves on completions and barrier arrivals,
        // both of which dirty the cache — on a still-clean quiescent tick
        // the previous scan already released every complete group and
        // nothing has arrived since, so the scan is skipped.
        if !quiescent || self.state_dirty {
            let multi = self.multi;
            for members in self.barrier_groups.values() {
                let all_arrived = members.iter().all(|t| {
                    let i = t.index();
                    self.threads.finished(i) || self.threads.at_barrier[i]
                });
                if all_arrived {
                    for t in members {
                        let i = t.index();
                        if !self.threads.finished(i) && self.threads.at_barrier[i] {
                            self.threads.at_barrier[i] = false;
                            let interval = self.threads.specs[i]
                                .barrier
                                .expect("barrier member must have barrier spec")
                                .interval_instructions;
                            self.threads.next_barrier_at[i] += interval;
                            self.state_dirty = true;
                            if multi {
                                // A released member rejoins its domain's
                                // runnable set next tick.
                                let d = self.vcore_domain[self.threads.vcore[i].index()] as usize;
                                self.dirty_domains[d] = true;
                                self.stale_ctrls[self.threads.home_domain[i].index()] = true;
                            }
                        }
                    }
                }
            }
        }

        // Record completions after the fact (events carry the finish tick).
        // Only a thread that ran this tick can have finished in it, so the
        // alive list — still holding this tick's finishers, ascending — is
        // the full candidate set (events keep their id order).
        self.scratch_finished.clear();
        let tick_end = self.now + SimTime::from_us(self.cfg.tick_us);
        for idx in 0..self.alive.len() {
            let i = self.alive[idx] as usize;
            if self.threads.finished_at[i] == Some(tick_end) {
                self.scratch_finished.push(ThreadId(i as u32));
            }
        }
        self.now = tick_end;
        self.tick_index += 1;
        if !self.scratch_finished.is_empty() {
            self.alive.retain(|&i| !self.threads.finished(i as usize));
        }
        for k in 0..self.scratch_finished.len() {
            self.events.push(MachineEvent::Finished {
                thread: self.scratch_finished[k],
                at: self.now,
            });
        }
    }

    /// Run for a duration (must be a multiple of the tick length).
    pub fn run_for(&mut self, dur: SimTime) {
        assert_eq!(
            dur.as_us() % self.cfg.tick_us,
            0,
            "duration {dur} is not a multiple of the tick"
        );
        let ticks = dur.as_us() / self.cfg.tick_us;
        for _ in 0..ticks {
            self.tick();
        }
    }

    /// Run until all threads finish or `deadline` passes. Returns true if
    /// everything finished.
    pub fn run_until_done(&mut self, deadline: SimTime) -> bool {
        while !self.all_done() && self.now < deadline {
            self.tick();
        }
        self.all_done()
    }

    /// Return the machine to its just-constructed state: simulated time
    /// zero, no threads, cleared counters/events, burstiness noise
    /// re-derived from the configured seed. A reset machine is
    /// behaviourally indistinguishable from `Machine::new(config)` — the
    /// fleet layer relies on this to reuse machine slots across runs
    /// without re-validating or re-plumbing configurations.
    pub fn reset(&mut self) {
        let cfg = self.cfg.clone();
        *self = Machine::new(cfg);
    }

    /// [`Machine::reset`] under a different seed: the fleet constructs
    /// every machine from one template configuration and gives each slot
    /// its own deterministic noise/fault stream.
    pub fn reset_with_seed(&mut self, seed: u64) {
        let mut cfg = self.cfg.clone();
        cfg.seed = seed;
        *self = Machine::new(cfg);
    }
}

/// Deterministic burstiness unit draw for `(seed, thread, window)` — a
/// pure hash mapped onto `[0, 1)`. The multiplier applied to the miss
/// ratio is `1 + burstiness · (2·unit − 1)`.
fn noise_unit(seed: u64, thread_idx: usize, window: u64) -> f64 {
    let mut x = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((thread_idx as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(window.wrapping_mul(0x94D0_49BB_1331_11EB));
    // splitmix64 finaliser
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64 // [0,1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::presets;
    use crate::ids::BarrierId;
    use crate::phase::{Phase, PhaseProgram};
    use crate::thread::BarrierSpec;

    fn compute_spec(app: u32, instr: f64) -> ThreadSpec {
        ThreadSpec {
            app: AppId(app),
            app_name: format!("comp{app}"),
            program: PhaseProgram::single(Phase::steady(0.6, 1.5, 0.5, 1e6), instr),
            barrier: None,
        }
    }

    fn memory_spec(app: u32, instr: f64) -> ThreadSpec {
        ThreadSpec {
            app: AppId(app),
            app_name: format!("mem{app}"),
            program: PhaseProgram::single(Phase::steady(1.0, 30.0, 8.0, 1e6), instr),
            barrier: None,
        }
    }

    #[test]
    fn single_thread_finishes_and_counts() {
        let mut m = Machine::new(presets::small_machine(1));
        let t = m.spawn(compute_spec(0, 1e8), VCoreId(0));
        assert!(m.run_until_done(SimTime::from_secs_f64(10.0)));
        let c = m.counters(t);
        assert!((c.instructions - 1e8).abs() < 1.0);
        assert!(c.llc_misses > 0.0);
        assert!(m.finish_time(t).is_some());
        assert_eq!(m.progress_of(t), 1.0);
        // Rough speed check: ~2.33e9/0.6 instr/s pipeline-limited, low misses.
        let secs = m.finish_time(t).unwrap().as_secs_f64();
        assert!(secs > 0.01 && secs < 0.2, "took {secs}s");
    }

    #[test]
    fn fast_core_beats_slow_core() {
        let mut fast = Machine::new(presets::small_machine(1));
        let tf = fast.spawn(compute_spec(0, 1e8), VCoreId(0)); // fast vcore
        fast.run_until_done(SimTime::from_secs_f64(10.0));

        let mut slow = Machine::new(presets::small_machine(1));
        let ts = slow.spawn(compute_spec(0, 1e8), VCoreId(4)); // slow vcore
        slow.run_until_done(SimTime::from_secs_f64(10.0));

        let ff = fast.finish_time(tf).unwrap().as_secs_f64();
        let ss = slow.finish_time(ts).unwrap().as_secs_f64();
        let ratio = ss / ff;
        // Frequency ratio is 2.33/1.21 ≈ 1.93 for a compute-bound thread.
        assert!(ratio > 1.6 && ratio < 2.1, "ratio {ratio}");
    }

    #[test]
    fn memory_thread_less_sensitive_to_core_speed() {
        let run = |vcore: u32| {
            let mut m = Machine::new(presets::small_machine(1));
            let t = m.spawn(memory_spec(0, 1e8), VCoreId(vcore));
            m.run_until_done(SimTime::from_secs_f64(30.0));
            m.finish_time(t).unwrap().as_secs_f64()
        };
        let ratio = run(4) / run(0);
        assert!(ratio > 1.0 && ratio < 1.7, "memory-bound ratio {ratio}");
    }

    #[test]
    fn contention_slows_corunners() {
        // One memory thread alone...
        let mut alone = Machine::new(presets::small_machine(1));
        let t0 = alone.spawn(memory_spec(0, 5e7), VCoreId(0));
        alone.run_until_done(SimTime::from_secs_f64(30.0));
        let t_alone = alone.finish_time(t0).unwrap().as_secs_f64();

        // ... versus with seven co-running memory threads.
        let mut crowd = Machine::new(presets::small_machine(1));
        let t0c = crowd.spawn(memory_spec(0, 5e7), VCoreId(0));
        for i in 1..8 {
            crowd.spawn(memory_spec(1, 4e8), VCoreId(i));
        }
        crowd.run_until_done(SimTime::from_secs_f64(60.0));
        let t_crowd = crowd.finish_time(t0c).unwrap().as_secs_f64();
        let slowdown = t_crowd / t_alone;
        assert!(slowdown > 1.5, "contention slowdown {slowdown}");
    }

    /// A small machine with the substrate balancer off, for tests that
    /// deliberately co-locate threads.
    fn small_machine_pinned(seed: u64) -> crate::config::MachineConfig {
        let mut cfg = presets::small_machine(seed);
        cfg.balance.enabled = false;
        cfg
    }

    #[test]
    fn smt_sibling_interferes() {
        // Two compute threads on separate physical cores...
        let mut apart = Machine::new(small_machine_pinned(1));
        let a = apart.spawn(compute_spec(0, 1e8), VCoreId(0));
        apart.spawn(compute_spec(1, 1e8), VCoreId(2));
        apart.run_until_done(SimTime::from_secs_f64(10.0));
        let t_apart = apart.finish_time(a).unwrap().as_secs_f64();

        // ... versus on the two contexts of one physical core.
        let mut together = Machine::new(small_machine_pinned(1));
        let b = together.spawn(compute_spec(0, 1e8), VCoreId(0));
        together.spawn(compute_spec(1, 1e8), VCoreId(1));
        together.run_until_done(SimTime::from_secs_f64(10.0));
        let t_together = together.finish_time(b).unwrap().as_secs_f64();

        let ratio = t_together / t_apart;
        let expect = 1.0 / presets::small_machine(1).smt.busy_share;
        assert!(
            ratio > 0.9 * expect && ratio < 1.1 * expect,
            "SMT ratio {ratio}, expected ~{expect}"
        );
    }

    #[test]
    fn migration_costs_dead_time_and_counts() {
        let mut m = Machine::new(presets::small_machine(1));
        let t = m.spawn(compute_spec(0, 1e9), VCoreId(0));
        m.run_for(SimTime::from_ms(10));
        let before = m.counters(t).instructions;
        m.migrate(t, VCoreId(4));
        assert_eq!(m.counters(t).migrations, 1);
        // During dead time no progress.
        m.run_for(SimTime::from_ms(2));
        assert_eq!(m.counters(t).instructions, before);
        m.run_for(SimTime::from_ms(10));
        assert!(m.counters(t).instructions > before);
        assert_eq!(m.vcore_of(t), VCoreId(4));
        // A no-op migration neither counts nor costs.
        m.migrate(t, VCoreId(4));
        assert_eq!(m.counters(t).migrations, 1);
    }

    #[test]
    fn two_threads_share_one_vcore() {
        let mut m = Machine::new(small_machine_pinned(1));
        let a = m.spawn(compute_spec(0, 1e8), VCoreId(0));
        let b = m.spawn(compute_spec(1, 1e8), VCoreId(0));
        m.run_until_done(SimTime::from_secs_f64(10.0));
        // Each got half the core: both take roughly twice the solo time.
        let mut solo = Machine::new(small_machine_pinned(1));
        let s = solo.spawn(compute_spec(0, 1e8), VCoreId(0));
        solo.run_until_done(SimTime::from_secs_f64(10.0));
        let ratio_a =
            m.finish_time(a).unwrap().as_secs_f64() / solo.finish_time(s).unwrap().as_secs_f64();
        assert!(ratio_a > 1.7 && ratio_a < 2.3, "sharing ratio {ratio_a}");
        assert!(m.finish_time(b).is_some());
    }

    #[test]
    fn barrier_couples_group_progress() {
        let mut m = Machine::new(presets::small_machine(1));
        let barrier = Some(BarrierSpec {
            group: BarrierId(0),
            interval_instructions: 1e6,
        });
        // One member on a fast core, one on a slow core.
        let mk = |app: u32| ThreadSpec {
            barrier,
            ..compute_spec(app, 2e7)
        };
        let fast_t = m.spawn(mk(0), VCoreId(0));
        let slow_t = m.spawn(mk(0), VCoreId(4));
        assert!(m.run_until_done(SimTime::from_secs_f64(30.0)));
        let ff = m.finish_time(fast_t).unwrap().as_secs_f64();
        let fs = m.finish_time(slow_t).unwrap().as_secs_f64();
        // Barrier coupling: the fast member is dragged to the slow member's
        // pace, so finish times are close despite a ~1.9x core-speed gap.
        assert!(
            (ff - fs).abs() / fs < 0.1,
            "barrier members should finish together: {ff} vs {fs}"
        );
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let run = || {
            let mut m = Machine::new(presets::small_machine(7));
            let mut spec = memory_spec(0, 1e8);
            spec.program.phases[0].burstiness = 0.4;
            let t = m.spawn(spec, VCoreId(0));
            m.spawn(compute_spec(1, 1e8), VCoreId(2));
            m.run_for(SimTime::from_ms(500));
            m.counters(t)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_changes_bursty_thread() {
        let run = |seed: u64| {
            let mut m = Machine::new(presets::small_machine(seed));
            let mut spec = memory_spec(0, 1e9);
            spec.program.phases[0].burstiness = 0.5;
            let t = m.spawn(spec, VCoreId(0));
            m.run_for(SimTime::from_ms(200));
            m.counters(t).llc_misses
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn events_are_recorded() {
        let mut m = Machine::new(presets::small_machine(1));
        let t = m.spawn(compute_spec(0, 1e6), VCoreId(0));
        m.migrate(t, VCoreId(1));
        m.run_until_done(SimTime::from_secs_f64(5.0));
        let kinds: Vec<&'static str> = m
            .events()
            .iter()
            .map(|e| match e {
                MachineEvent::Spawned { .. } => "spawn",
                MachineEvent::Migrated { .. } => "migrate",
                MachineEvent::Finished { .. } => "finish",
                MachineEvent::Balanced { .. } => "balance",
                MachineEvent::Stalled { .. } => "stall",
            })
            .collect();
        assert_eq!(kinds, vec!["spawn", "migrate", "finish"]);
        assert_eq!(m.total_migrations(), 1);
    }

    #[test]
    fn stall_freezes_progress_without_counting_as_migration() {
        let mut m = Machine::new(presets::small_machine(1));
        let t = m.spawn(compute_spec(0, 1e9), VCoreId(0));
        m.run_for(SimTime::from_ms(10));
        let before = m.counters(t).instructions;
        // Stalled for the whole window: no instructions retire.
        m.stall(t, SimTime::from_ms(20));
        m.run_for(SimTime::from_ms(20));
        assert_eq!(m.counters(t).instructions, before);
        assert_eq!(m.counters(t).migrations, 0);
        // Progress resumes after the stall window.
        m.run_for(SimTime::from_ms(10));
        assert!(m.counters(t).instructions > before);
        assert!(m
            .events()
            .iter()
            .any(|e| matches!(e, MachineEvent::Stalled { thread, .. } if *thread == t)));
        // A zero-length stall is a no-op and records nothing.
        let n_events = m.events().len();
        m.stall(t, SimTime::ZERO);
        assert_eq!(m.events().len(), n_events);
    }

    #[test]
    fn core_counters_accumulate_on_right_core() {
        let mut m = Machine::new(presets::small_machine(1));
        m.spawn(memory_spec(0, 1e9), VCoreId(3));
        m.run_for(SimTime::from_ms(100));
        assert!(m.core_counters(VCoreId(3)).accesses > 0.0);
        assert_eq!(m.core_counters(VCoreId(0)).accesses, 0.0);
        assert_eq!(m.core_counters(VCoreId(3)).busy_us, 100_000);
    }

    #[test]
    fn balancer_promotes_threads_to_the_idle_half() {
        // Two compute threads pinned to the slow half; the balancer should
        // move one to the idle fast half within its first interval.
        let mut m = Machine::new(presets::small_machine(1));
        let a = m.spawn(compute_spec(0, 1e9), VCoreId(4));
        let b = m.spawn(compute_spec(1, 1e9), VCoreId(5));
        m.run_for(SimTime::from_ms(300));
        let on_fast = [a, b]
            .iter()
            .filter(|&&t| m.vcore_of(t).index() < 4)
            .count();
        assert_eq!(on_fast, 1, "balancer should even the halves");
        assert!(m.balancer_moves() >= 1);
        // Policy migration counters untouched.
        assert_eq!(m.total_migrations(), 0);
        assert!(m
            .events()
            .iter()
            .any(|e| matches!(e, MachineEvent::Balanced { .. })));
    }

    #[test]
    fn balancer_respects_disable_flag() {
        let mut cfg = presets::small_machine(1);
        cfg.balance.enabled = false;
        let mut m = Machine::new(cfg);
        let a = m.spawn(compute_spec(0, 1e9), VCoreId(4));
        m.run_for(SimTime::from_ms(300));
        assert_eq!(m.vcore_of(a), VCoreId(4));
        assert_eq!(m.balancer_moves(), 0);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn run_for_rejects_partial_ticks() {
        let mut m = Machine::new(presets::small_machine(1));
        m.run_for(SimTime::from_us(1500));
    }

    /// A 2-domain all-fast machine (2 pcores per domain, 2-way SMT = 8
    /// vcores), balancer off so tests control placement exactly.
    fn numa_small(seed: u64) -> crate::config::MachineConfig {
        let mut cfg = presets::small_machine(seed);
        cfg.topology = crate::topology::Topology::numa_uniform(2, 2, 0, 2);
        cfg.balance.enabled = false;
        cfg
    }

    #[test]
    fn home_domain_is_fixed_at_spawn() {
        let mut m = Machine::new(numa_small(1));
        let t = m.spawn(memory_spec(0, 1e9), VCoreId(0));
        assert_eq!(m.home_domain_of(t), crate::ids::DomainId(0));
        m.migrate(t, VCoreId(4)); // domain 1
        assert_eq!(m.home_domain_of(t), crate::ids::DomainId(0));
        let u = m.spawn(memory_spec(1, 1e9), VCoreId(5));
        assert_eq!(m.home_domain_of(u), crate::ids::DomainId(1));
    }

    #[test]
    fn cross_domain_migration_costs_more_than_intra() {
        // Identical fast cores; the only difference is whether the
        // migration target shares the source's NUMA domain.
        let run = |target: u32| {
            let mut m = Machine::new(numa_small(1));
            let t = m.spawn(memory_spec(0, 5e7), VCoreId(0));
            m.migrate(t, VCoreId(target));
            m.run_until_done(SimTime::from_secs_f64(30.0));
            (
                m.finish_time(t).unwrap().as_secs_f64(),
                m.counters(t).remote_us,
            )
        };
        let (intra_s, intra_remote) = run(2); // pcore 1, still domain 0
        let (cross_s, cross_remote) = run(4); // pcore 2, domain 1
        assert_eq!(intra_remote, 0);
        assert!(cross_remote > 0, "remote residency must be counted");
        assert!(
            cross_s > intra_s * 1.05,
            "cross-domain swap must cost more: {cross_s}s vs {intra_s}s"
        );
    }

    #[test]
    fn remote_us_zero_on_single_domain_machines() {
        let mut m = Machine::new(presets::small_machine(1));
        let t = m.spawn(memory_spec(0, 1e8), VCoreId(0));
        m.migrate(t, VCoreId(4));
        m.run_until_done(SimTime::from_secs_f64(30.0));
        assert_eq!(m.counters(t).remote_us, 0);
    }

    #[test]
    fn mid_run_spawn_records_time_home_and_dense_id() {
        let mut m = Machine::new(numa_small(1));
        let a = m.spawn(compute_spec(0, 1e6), VCoreId(0));
        assert_eq!(m.spawn_time(a), SimTime::ZERO);
        m.run_for(SimTime::from_ms(50));
        // First-touch homing happens at actual spawn time, on the core the
        // arrival lands on — domain 1 here, regardless of earlier threads.
        let b = m.spawn(compute_spec(1, 1e6), VCoreId(5));
        assert_eq!(b, ThreadId(1), "ids stay dense across mid-run spawns");
        assert_eq!(m.spawn_time(b), SimTime::from_ms(50));
        assert_eq!(m.home_domain_of(b), crate::ids::DomainId(1));
        assert!(m.run_until_done(SimTime::from_secs_f64(10.0)));
        // A finished thread is retired: its vcore shows up as idle again.
        assert!(m.idle_vcores().contains(&VCoreId(5)));
        assert_eq!(m.idle_vcores().len(), 8);
    }

    #[test]
    fn idle_vcores_excludes_occupied_slots() {
        let mut m = Machine::new(small_machine_pinned(1));
        m.spawn(compute_spec(0, 1e9), VCoreId(2));
        m.spawn(compute_spec(1, 1e9), VCoreId(2)); // doubled up
        let idle = m.idle_vcores();
        assert!(!idle.contains(&VCoreId(2)));
        assert_eq!(idle.len(), 7, "one occupied vcore on an 8-vcore machine");
    }

    #[test]
    fn full_width_single_cluster_is_bitwise_unpartitioned() {
        // A single cluster holding every way, with every thread assigned
        // to it, computes the very same working-set sum (same order) and
        // the very same inflation as the unpartitioned path — so the whole
        // trajectory must match bit for bit, including burstiness.
        let run = |partition: bool| {
            let mut m = Machine::new(small_machine_pinned(7));
            let mut ids = Vec::new();
            for i in 0..4u32 {
                let mut spec = memory_spec(i, 2e8);
                spec.program.phases[0].burstiness = 0.3;
                ids.push(m.spawn(spec, VCoreId(i * 2)));
            }
            if partition {
                let plan = PartitionPlan {
                    cluster_ways: vec![m.config().llc.ways],
                    assignments: ids.iter().map(|&t| (t, 0)).collect(),
                };
                m.apply_partition(&plan).unwrap();
                assert!(m.partition_active());
            }
            m.run_for(SimTime::from_ms(500));
            ids.iter().map(|&t| m.counters(t)).collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn full_width_single_cluster_is_bitwise_unpartitioned_on_numa() {
        // Same identity through the incremental multi-domain rebuild.
        let run = |partition: bool| {
            let mut m = Machine::new(numa_small(7));
            let mut ids = Vec::new();
            for i in 0..4u32 {
                let mut spec = memory_spec(i, 2e8);
                spec.program.phases[0].burstiness = 0.3;
                ids.push(m.spawn(spec, VCoreId(i * 2)));
            }
            if partition {
                let plan = PartitionPlan {
                    cluster_ways: vec![m.config().llc.ways],
                    assignments: ids.iter().map(|&t| (t, 0)).collect(),
                };
                m.apply_partition(&plan).unwrap();
            }
            m.run_for(SimTime::from_ms(500));
            ids.iter().map(|&t| m.counters(t)).collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn jailing_a_thrasher_shields_the_sensitive_corunner() {
        // The thrasher drags a 20 MiB footprint through the 5 MiB LLC but
        // misses rarely (capacity pressure without bandwidth pressure), so
        // unpartitioned both threads inflate to the cap. Jailing it into a
        // single way leaves the victim a 15/16 slice its 8 MiB set only
        // mildly overflows, while the thrasher's own inflation was already
        // capped — the shielded victim finishes sooner, the bandwidth bill
        // stays the same.
        let run = |jail: bool| {
            let mut m = Machine::new(small_machine_pinned(1));
            let victim = m.spawn(memory_spec(0, 2e8), VCoreId(0));
            let thrasher = m.spawn(
                ThreadSpec {
                    app: AppId(1),
                    app_name: "thrash".into(),
                    program: PhaseProgram::single(Phase::steady(1.0, 5.0, 20.0, 1e6), 1e9),
                    barrier: None,
                },
                VCoreId(2),
            );
            if jail {
                let plan = PartitionPlan {
                    cluster_ways: vec![1, m.config().llc.ways - 1],
                    assignments: vec![(victim, 1), (thrasher, 0)],
                };
                m.apply_partition(&plan).unwrap();
            }
            m.run_until_done(SimTime::from_secs_f64(300.0));
            m.finish_time(victim).unwrap().as_secs_f64()
        };
        let jailed = run(true);
        let free = run(false);
        assert!(
            jailed < free * 0.95,
            "shielded victim should finish sooner: {jailed}s vs {free}s"
        );
    }

    #[test]
    fn partition_epoch_validation_and_occupancy() {
        let mut m = Machine::new(small_machine_pinned(1));
        assert_eq!(m.partition_epoch(), 0);
        assert!(!m.partition_active());
        // An invalid plan is rejected without touching state.
        let bad = PartitionPlan {
            cluster_ways: vec![99],
            assignments: vec![],
        };
        assert!(m.apply_partition(&bad).is_err());
        assert_eq!(m.partition_epoch(), 0);
        let t = m.spawn(memory_spec(0, 1e9), VCoreId(0));
        // Unpartitioned occupancy: working set capped at full capacity.
        assert_eq!(m.llc_occupancy_mib(t), 5.0);
        let plan = PartitionPlan {
            cluster_ways: vec![4],
            assignments: vec![(t, 0)],
        };
        m.apply_partition(&plan).unwrap();
        assert_eq!(m.partition_epoch(), 1);
        assert!(m.partition_active());
        assert_eq!(m.partition().cluster_ways, vec![4]);
        // Occupancy is now capped by the 4/16 slice.
        let cap = m.config().llc.capacity_mib * 4.0 / 16.0;
        assert!((m.llc_occupancy_mib(t) - cap).abs() < 1e-12);
        // Shrinking the slice charged a cache warm-up (no dead time).
        assert!(m.threads.warmup_until[t.index()] > SimTime::ZERO);
        assert_eq!(m.threads.dead_until[t.index()], SimTime::ZERO);
        m.clear_partition();
        assert_eq!(m.partition_epoch(), 2);
        assert!(!m.partition_active());
        // Reset returns to the unpartitioned epoch-zero state.
        m.apply_partition(&plan).unwrap();
        m.reset();
        assert_eq!(m.partition_epoch(), 0);
        assert!(!m.partition_active());
    }

    #[test]
    fn numa_machine_runs_threads_in_every_domain() {
        let mut cfg = presets::numa_machine(4, 3);
        cfg.balance.enabled = false;
        let mut m = Machine::new(cfg);
        let mut ids = Vec::new();
        for d in 0..4u32 {
            ids.push(m.spawn(memory_spec(d, 5e7), VCoreId(d * 40)));
        }
        assert!(m.run_until_done(SimTime::from_secs_f64(30.0)));
        for (d, &t) in ids.iter().enumerate() {
            assert_eq!(m.home_domain_of(t), crate::ids::DomainId(d as u32));
            assert_eq!(m.counters(t).remote_us, 0);
            assert!(m.counters(t).instructions >= 5e7 - 1.0);
        }
    }
}
