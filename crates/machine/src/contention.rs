//! Shared-resource contention models.
//!
//! The paper attributes contention-induced slowdown primarily to the shared
//! memory system (memory controller plus on-chip interconnect) with a
//! secondary effect from shared last-level cache capacity. Both effects are
//! modelled here as pure functions so they can be tested and reasoned about
//! in isolation from the execution engine.
//!
//! * **LLC pressure** ([`llc_inflation`]): when the sum of the running
//!   threads' working sets exceeds the shared cache, every thread's miss
//!   ratio inflates — misses that would have been hits in isolation. This is
//!   why even compute-intensive applications slow down under co-location
//!   (Figure 1 of the paper).
//! * **Memory controller** ([`solve_memory`]): threads' miss streams queue at
//!   one controller. Utilisation below saturation inflates the effective
//!   per-miss latency with an M/M/1-style factor; demand beyond the peak
//!   bandwidth is served proportionally to demand (bandwidth sharing).

//! * **Multiple controllers** ([`solve_memory_numa`]): on a NUMA machine
//!   each domain's controller runs the same fixed point over the demands
//!   *homed* to it, with remote threads (running outside their home domain)
//!   paying a latency factor on every miss. The one-domain case reduces
//!   bit-for-bit to [`solve_memory`].

use crate::config::{LlcConfig, MemoryConfig};
use crate::ids::DomainId;

/// Miss-ratio inflation factor for a given total running working set.
///
/// Returns 1.0 while the combined working set fits in the cache and grows
/// linearly with over-subscription up to [`LlcConfig::max_inflation`].
pub fn llc_inflation(total_working_set_mib: f64, cfg: &LlcConfig) -> f64 {
    llc_inflation_scaled(total_working_set_mib, cfg, cfg.capacity_mib)
}

/// [`llc_inflation`] against an explicit capacity instead of the full
/// configured cache — the per-cluster form used under way-partitioning,
/// where a cluster of threads sees only its allocated slice
/// `capacity_mib * ways_granted / ways_total`. With
/// `capacity_mib == cfg.capacity_mib` this is [`llc_inflation`] itself
/// (same float ops in the same order), which is what keeps the
/// no-partition path bit-identical. A zero capacity caps at
/// `max_inflation` for any positive working set (ws/0 = inf) and yields
/// 1.0 for an empty cluster (0/0 = NaN, discarded by the `.max(0.0)`).
pub fn llc_inflation_scaled(total_working_set_mib: f64, cfg: &LlcConfig, capacity_mib: f64) -> f64 {
    let over = (total_working_set_mib / capacity_mib - 1.0).max(0.0);
    (1.0 + cfg.sensitivity * over).min(cfg.max_inflation)
}

/// One thread's demand on the memory system for the current tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemDemand {
    /// Seconds per instruction from the pipeline alone (already includes
    /// the core's frequency, run-queue share and SMT factor).
    pub base_time_per_instr: f64,
    /// Effective LLC miss ratio (misses per instruction) after cache
    /// pressure, warm-up and burstiness adjustments.
    pub miss_ratio: f64,
}

/// The solved state of the memory system for one tick.
///
/// Reusable as a scratch buffer: the hot path calls
/// [`solve_memory_into`] with a long-lived `MemSolution`, so steady-state
/// ticks perform no allocation (the `rates` vector keeps its capacity).
#[derive(Debug, Clone, PartialEq)]
pub struct MemSolution {
    /// Achieved instruction rate (instructions/second) per input demand.
    pub rates: Vec<f64>,
    /// Controller utilisation: achieved miss throughput over peak bandwidth.
    pub utilisation: f64,
    /// Effective per-miss latency (seconds) including queueing delay.
    pub latency_s: f64,
}

impl MemSolution {
    /// An empty solution, ready for reuse via [`solve_memory_into`].
    pub fn empty() -> Self {
        MemSolution {
            rates: Vec::new(),
            utilisation: 0.0,
            latency_s: 0.0,
        }
    }
}

impl Default for MemSolution {
    fn default() -> Self {
        MemSolution::empty()
    }
}

/// Iteration budget of the fixed-point solve. The reference solver always
/// spends the whole budget; the production solver exits as soon as the
/// utilisation estimate has converged (typically 3–6 evaluations).
const MAX_ITERS: usize = 16;

/// Relative convergence tolerance on the utilisation `rho` between damped
/// iterations. Chosen so an early exit perturbs the solved rates by far
/// less than 1e-9 relative to running the full budget (the remaining
/// geometric tail is bounded by the last step size).
const REL_TOL: f64 = 1e-12;

/// Solve the coupled rate/latency fixed point for one tick.
///
/// Each thread's achieved instruction rate is
/// `1 / (base_time + miss_ratio * latency)`, while the latency itself
/// depends on total achieved miss throughput through the queueing factor
/// `latency = base * (1 + gain * r / (1 - r))`, `r = min(rho, max_util)`.
/// The fixed point is found by damped iteration (the map is monotone
/// decreasing in `rho`, so damping guarantees convergence), accelerated by
/// geometric extrapolation of the damped step sequence and an early exit
/// once `rho` moves by less than [`REL_TOL`] relative — instead of always
/// burning the full [`MAX_ITERS`] rounds. Any residual demand above peak
/// bandwidth is then cut by proportional sharing.
pub fn solve_memory(demands: &[MemDemand], cfg: &MemoryConfig) -> MemSolution {
    let mut out = MemSolution::empty();
    solve_memory_into(demands, cfg, &mut out);
    out
}

/// [`solve_memory`] writing into a caller-provided solution, reusing its
/// `rates` allocation. This is the per-tick hot path of the engine.
pub fn solve_memory_into(demands: &[MemDemand], cfg: &MemoryConfig, out: &mut MemSolution) {
    solve_memory_impl(demands, cfg, out, true);
}

/// Reference solver: identical scheme to [`solve_memory`] but always runs
/// the full [`MAX_ITERS`] iteration budget with no early exit. Exists so
/// property tests can assert the early exit never truncates prematurely;
/// not used on any hot path.
pub fn solve_memory_reference(demands: &[MemDemand], cfg: &MemoryConfig) -> MemSolution {
    let mut out = MemSolution::empty();
    solve_memory_impl(demands, cfg, &mut out, false);
    out
}

/// One evaluation of the fixed-point map at utilisation `rho`: computes
/// the queue-inflated latency, every thread's rate at that latency, and
/// returns `(latency, g(rho))` where `g` is the next utilisation estimate.
#[inline]
fn eval_map(rho: f64, demands: &[MemDemand], cfg: &MemoryConfig, rates: &mut [f64]) -> (f64, f64) {
    let r = rho.clamp(0.0, cfg.max_utilisation);
    let latency = cfg.base_latency_s * (1.0 + cfg.queue_gain * r / (1.0 - r));
    let mut miss_throughput = 0.0;
    for (rate, d) in rates.iter_mut().zip(demands) {
        *rate = 1.0 / (d.base_time_per_instr + d.miss_ratio * latency);
        miss_throughput += *rate * d.miss_ratio;
    }
    (latency, miss_throughput / cfg.bandwidth_accesses_per_sec)
}

fn solve_memory_impl(
    demands: &[MemDemand],
    cfg: &MemoryConfig,
    out: &mut MemSolution,
    early_exit: bool,
) {
    out.rates.clear();
    if demands.is_empty() {
        out.utilisation = 0.0;
        out.latency_s = cfg.base_latency_s;
        return;
    }
    out.rates.resize(demands.len(), 0.0);

    let bw = cfg.bandwidth_accesses_per_sec;
    let mut rho = 0.0_f64;
    // Step size of the previous damped iteration; zero means "no usable
    // ratio yet" (first iteration, or just after an extrapolation jump).
    let mut prev_delta = 0.0_f64;

    for _ in 0..MAX_ITERS {
        let (_, g_rho) = eval_map(rho, demands, cfg, &mut out.rates);
        // Damping: the undamped map can oscillate when demand >> bandwidth.
        let damped = 0.5 * rho + 0.5 * g_rho;
        let delta = damped - rho;
        if early_exit && delta.abs() <= REL_TOL * damped.abs().max(REL_TOL) {
            rho = damped;
            break;
        }
        // The damped step sequence contracts geometrically with local
        // ratio q = 0.5·(1 + g′) — positive under light load, negative
        // (oscillating) when g′ < −1 near the utilisation cap. Either
        // way the remaining tail sums to delta·q/(1 − q), so once the
        // ratio is measurable and contracting (|q| < 1), jump straight
        // to the geometric limit and restart ratio estimation. The upper
        // guard stays below 1 so a near-unit ratio cannot launch a wild
        // extrapolation.
        if prev_delta != 0.0 {
            let q = delta / prev_delta;
            if q > -0.99 && q < 0.95 && q != 0.0 {
                rho = (damped + delta * q / (1.0 - q)).max(0.0);
                prev_delta = 0.0;
                continue;
            }
        }
        rho = damped;
        prev_delta = delta;
    }

    // One closing evaluation at the settled utilisation, so the reported
    // rates, latency and throughput are mutually consistent.
    let (latency, final_rho) = eval_map(rho, demands, cfg, &mut out.rates);
    out.latency_s = latency;
    let miss_throughput = final_rho * bw;

    // Hard bandwidth cap: when total demand exceeds peak bandwidth, the
    // controller serves each thread in proportion to its *unconstrained*
    // demand (pipeline rate × miss ratio). A faster core issues misses
    // faster and wins a proportionally larger share — this is what makes
    // memory-bound threads frequency-sensitive under saturation, the
    // effect behind the paper's "STREAM slows 4.6× on the heterogeneous
    // machine vs 3.4× on the homogeneous one". The per-demand weight
    // `miss_ratio / base_time` is summed in a first pass and applied in a
    // second, so the branch allocates nothing.
    out.utilisation = if miss_throughput > bw {
        let total_weight: f64 = demands
            .iter()
            .map(|d| d.miss_ratio / d.base_time_per_instr)
            .sum();
        if total_weight > 0.0 {
            for (rate, d) in out.rates.iter_mut().zip(demands) {
                if d.miss_ratio > 0.0 {
                    let share = bw * (d.miss_ratio / d.base_time_per_instr) / total_weight;
                    *rate = rate.min(share / d.miss_ratio);
                }
            }
        }
        let served: f64 = out
            .rates
            .iter()
            .zip(demands)
            .map(|(rate, d)| rate * d.miss_ratio)
            .sum();
        (served / bw).min(1.0)
    } else {
        miss_throughput / bw
    };
}

/// One thread's demand on a multi-controller memory system: the plain
/// [`MemDemand`] plus which controller its misses are homed to and whether
/// the thread currently runs outside that domain (paying the remote-access
/// latency factor).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NumaDemand {
    /// Pipeline-side demand, as for the single-controller solver.
    pub demand: MemDemand,
    /// Controller that services this thread's misses (first-touch home).
    pub home: DomainId,
    /// True when the thread runs on a core outside its home domain.
    pub remote: bool,
}

/// Solved state of one memory controller inside a [`NumaSolution`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DomainSolution {
    /// Controller utilisation (achieved miss throughput / peak bandwidth).
    pub utilisation: f64,
    /// Effective *local* per-miss latency at this controller (seconds);
    /// remote clients of the controller see it scaled by the remote factor.
    pub latency_s: f64,
}

/// The solved state of a multi-controller memory system for one tick.
///
/// Like [`MemSolution`] it is reusable as a scratch buffer: the engine keeps
/// one alive and calls [`solve_memory_numa_into`] every tick, so steady-state
/// ticks perform no allocation.
#[derive(Debug, Clone, Default)]
pub struct NumaSolution {
    /// Achieved instruction rate (instructions/second) per input demand,
    /// parallel to the input slice.
    pub rates: Vec<f64>,
    /// Per-controller utilisation and latency, indexed by domain.
    pub domains: Vec<DomainSolution>,
    // Per-domain partitioning scratch, reused across ticks.
    scratch_idx: Vec<u32>,
    scratch_demands: Vec<MemDemand>,
    scratch_factors: Vec<f64>,
    scratch_rates: Vec<f64>,
}

impl NumaSolution {
    /// An empty solution, ready for reuse via [`solve_memory_numa_into`].
    pub fn empty() -> Self {
        NumaSolution::default()
    }

    /// Sum of achieved miss throughput (accesses/second) across all
    /// controllers, computed from the solved utilisations.
    pub fn total_miss_throughput(&self, cfg: &MemoryConfig) -> f64 {
        self.domains
            .iter()
            .map(|d| d.utilisation * cfg.bandwidth_accesses_per_sec)
            .sum()
    }
}

/// Solve every controller of a multi-domain memory system for one tick.
///
/// Demands are partitioned by their *home* domain — misses always queue at
/// the controller that owns the thread's memory, wherever the thread runs —
/// and each partition gets its own [`solve_memory`]-style fixed point, with
/// remote threads' per-miss stall scaled by
/// [`MemoryConfig::remote_latency_factor`]. Controllers are independent:
/// each has the full per-controller peak bandwidth.
pub fn solve_memory_numa(
    demands: &[NumaDemand],
    num_domains: usize,
    cfg: &MemoryConfig,
) -> NumaSolution {
    let mut out = NumaSolution::empty();
    solve_memory_numa_into(demands, num_domains, cfg, &mut out);
    out
}

/// [`solve_memory_numa`] writing into a caller-provided solution, reusing
/// its allocations. This is the per-tick hot path on multi-domain machines.
pub fn solve_memory_numa_into(
    demands: &[NumaDemand],
    num_domains: usize,
    cfg: &MemoryConfig,
    out: &mut NumaSolution,
) {
    assert!(num_domains >= 1, "need at least one memory controller");
    out.rates.clear();
    out.rates.resize(demands.len(), 0.0);
    out.domains.clear();

    for dom in 0..num_domains as u32 {
        out.scratch_idx.clear();
        out.scratch_demands.clear();
        out.scratch_factors.clear();
        for (i, nd) in demands.iter().enumerate() {
            if nd.home.0 == dom {
                out.scratch_idx.push(i as u32);
                out.scratch_demands.push(nd.demand);
                out.scratch_factors.push(if nd.remote {
                    cfg.remote_latency_factor
                } else {
                    1.0
                });
            }
        }
        let (utilisation, latency_s) = solve_memory_scaled(
            &out.scratch_demands,
            &out.scratch_factors,
            cfg,
            &mut out.scratch_rates,
        );
        out.domains.push(DomainSolution {
            utilisation,
            latency_s,
        });
        for (k, &i) in out.scratch_idx.iter().enumerate() {
            out.rates[i as usize] = out.scratch_rates[k];
        }
    }
}

/// One evaluation of the per-controller fixed-point map with per-demand
/// latency factors. With all factors equal to 1.0 this computes exactly the
/// same floating-point values as [`eval_map`] (multiplying by 1.0 is the
/// identity), which is what makes the one-domain NUMA solve bit-compatible
/// with the single-controller solver.
#[inline]
fn eval_map_scaled(
    rho: f64,
    demands: &[MemDemand],
    factors: &[f64],
    cfg: &MemoryConfig,
    rates: &mut [f64],
) -> (f64, f64) {
    let r = rho.clamp(0.0, cfg.max_utilisation);
    let latency = cfg.base_latency_s * (1.0 + cfg.queue_gain * r / (1.0 - r));
    let mut miss_throughput = 0.0;
    for ((rate, d), f) in rates.iter_mut().zip(demands).zip(factors) {
        *rate = 1.0 / (d.base_time_per_instr + d.miss_ratio * latency * f);
        miss_throughput += *rate * d.miss_ratio;
    }
    (latency, miss_throughput / cfg.bandwidth_accesses_per_sec)
}

/// The [`solve_memory_impl`] iteration scheme for one controller with
/// per-demand latency factors. Returns `(utilisation, latency_s)` and fills
/// `rates` (cleared and resized) with the achieved instruction rates.
fn solve_memory_scaled(
    demands: &[MemDemand],
    factors: &[f64],
    cfg: &MemoryConfig,
    rates: &mut Vec<f64>,
) -> (f64, f64) {
    solve_memory_scaled_seeded(demands, factors, cfg, rates, None)
}

/// [`solve_memory_scaled`] with an optional warm-start seed for the
/// utilisation iterate. `None` starts the fixed point from `rho = 0`,
/// reproducing the cold solver bit-for-bit; `Some(rho)` starts from a
/// previous tick's solved utilisation, which typically converges in 1–2
/// damped steps instead of 3–6. Either way the early-exit criterion bounds
/// the result to within [`REL_TOL`] of the true fixed point, so a warm seed
/// changes the answer by at most ~2·[`REL_TOL`] relative — the basis of the
/// [`NumaWarmSolver`] tolerance-mode accuracy argument.
fn solve_memory_scaled_seeded(
    demands: &[MemDemand],
    factors: &[f64],
    cfg: &MemoryConfig,
    rates: &mut Vec<f64>,
    seed: Option<f64>,
) -> (f64, f64) {
    rates.clear();
    if demands.is_empty() {
        return (0.0, cfg.base_latency_s);
    }
    rates.resize(demands.len(), 0.0);

    let bw = cfg.bandwidth_accesses_per_sec;
    let mut rho = seed.map_or(0.0_f64, |s| s.clamp(0.0, 1.0));
    let mut prev_delta = 0.0_f64;

    for _ in 0..MAX_ITERS {
        let (_, g_rho) = eval_map_scaled(rho, demands, factors, cfg, rates);
        let damped = 0.5 * rho + 0.5 * g_rho;
        let delta = damped - rho;
        if delta.abs() <= REL_TOL * damped.abs().max(REL_TOL) {
            rho = damped;
            break;
        }
        if prev_delta != 0.0 {
            let q = delta / prev_delta;
            if q > -0.99 && q < 0.95 && q != 0.0 {
                rho = (damped + delta * q / (1.0 - q)).max(0.0);
                prev_delta = 0.0;
                continue;
            }
        }
        rho = damped;
        prev_delta = delta;
    }

    let (latency, final_rho) = eval_map_scaled(rho, demands, factors, cfg, rates);
    let miss_throughput = final_rho * bw;

    // Proportional bandwidth sharing above peak, as in the single-controller
    // solver. The weight is the unconstrained pipeline-side demand — the
    // remote factor does not change how much controller bandwidth a miss
    // consumes, only how long the requester stalls on it.
    let utilisation = if miss_throughput > bw {
        let total_weight: f64 = demands
            .iter()
            .map(|d| d.miss_ratio / d.base_time_per_instr)
            .sum();
        if total_weight > 0.0 {
            for (rate, d) in rates.iter_mut().zip(demands) {
                if d.miss_ratio > 0.0 {
                    let share = bw * (d.miss_ratio / d.base_time_per_instr) / total_weight;
                    *rate = rate.min(share / d.miss_ratio);
                }
            }
        }
        let served: f64 = rates
            .iter()
            .zip(demands)
            .map(|(rate, d)| rate * d.miss_ratio)
            .sum();
        (served / bw).min(1.0)
    } else {
        miss_throughput / bw
    };
    (utilisation, latency)
}

/// Warm-start memo for one memory controller inside a [`NumaWarmSolver`].
#[derive(Debug, Clone, Default)]
struct WarmController {
    /// Demand sub-vector of the last real solve, in presentation order.
    demands: Vec<MemDemand>,
    /// Latency factors of the last real solve, parallel to `demands`.
    factors: Vec<f64>,
    /// Rates of the last real solve, parallel to `demands`.
    rates: Vec<f64>,
    solution: DomainSolution,
    /// False until the first solve populates the memo.
    valid: bool,
}

/// Per-controller warm-started contention solving.
///
/// The engine re-solves a controller only when that controller's demand
/// sub-vector actually moved (per-domain dirty tracking); this type holds
/// the per-controller state that makes each re-solve cheap and each
/// unchanged controller free:
///
/// * **Exact reuse** — a bitwise-identical `(demands, factors)` sub-vector
///   returns the memoised rates outright. The solver is a pure function of
///   its inputs, so this is bit-for-bit the answer a cold solve would give.
/// * **Tolerance reuse** (opt-in, `tolerance > 0`) — a sub-vector whose
///   every element moved by less than `tolerance` *relative* keeps the
///   previous solution. The fixed-point map is Lipschitz in the demands at
///   the solved point, so the reused rates differ from a fresh solve by
///   O(`tolerance`) relative.
/// * **Warm seeding** (tolerance mode only) — a sub-vector that did move
///   beyond tolerance is re-solved with the fixed point seeded from the
///   previous utilisation instead of zero. The early-exit criterion bounds
///   the result to within ~2·1e-12 of the true fixed point regardless of
///   the seed, so seeding buys iterations, not error.
///
/// The default `tolerance` of 0.0 disables both approximations: every
/// answer is then bit-identical to the cold [`solve_memory_numa_into`]
/// reference path, which is kept for property-test cross-checking.
#[derive(Debug, Clone, Default)]
pub struct NumaWarmSolver {
    ctrls: Vec<WarmController>,
    tolerance: f64,
}

impl NumaWarmSolver {
    /// An exact (`tolerance = 0`) warm solver for `num_domains` controllers.
    pub fn new(num_domains: usize) -> Self {
        Self::with_tolerance(num_domains, 0.0)
    }

    /// A warm solver that reuses a controller's previous solution while its
    /// demand vector stays within `tolerance` relative per element.
    ///
    /// # Panics
    /// Panics if `tolerance` is negative or not finite.
    pub fn with_tolerance(num_domains: usize, tolerance: f64) -> Self {
        assert!(
            tolerance >= 0.0 && tolerance.is_finite(),
            "tolerance must be finite and non-negative, got {tolerance}"
        );
        NumaWarmSolver {
            ctrls: vec![WarmController::default(); num_domains.max(1)],
            tolerance,
        }
    }

    /// Number of controllers this solver tracks.
    pub fn num_domains(&self) -> usize {
        self.ctrls.len()
    }

    /// Drop all memoised state: the next solve of every controller runs
    /// cold, exactly as on the first tick.
    pub fn invalidate(&mut self) {
        for c in &mut self.ctrls {
            c.valid = false;
        }
    }

    /// Solved state of one controller (the last `solve` answer for it).
    pub fn domain_solution(&self, dom: usize) -> DomainSolution {
        self.ctrls[dom].solution
    }

    /// Solve controller `dom` for a demand sub-vector in presentation
    /// order, returning the achieved rates (parallel to `demands`) and the
    /// controller solution. Reuses the memoised answer when the inputs are
    /// bitwise unchanged (always) or within the relative tolerance (when
    /// one was configured); otherwise runs the fixed point — seeded from
    /// the previous utilisation in tolerance mode, cold otherwise.
    pub fn solve(
        &mut self,
        dom: usize,
        demands: &[MemDemand],
        factors: &[f64],
        cfg: &MemoryConfig,
    ) -> (&[f64], DomainSolution) {
        assert_eq!(
            demands.len(),
            factors.len(),
            "demands and factors must be parallel"
        );
        let tolerance = self.tolerance;
        let c = &mut self.ctrls[dom];
        if c.valid && c.demands == demands && c.factors == factors {
            return (&c.rates, c.solution);
        }
        if c.valid
            && tolerance > 0.0
            && within_relative_tolerance(&c.demands, &c.factors, demands, factors, tolerance)
        {
            return (&c.rates, c.solution);
        }
        let seed = if tolerance > 0.0 && c.valid && c.demands.len() == demands.len() {
            Some(c.solution.utilisation)
        } else {
            None
        };
        let (utilisation, latency_s) =
            solve_memory_scaled_seeded(demands, factors, cfg, &mut c.rates, seed);
        c.demands.clear();
        c.demands.extend_from_slice(demands);
        c.factors.clear();
        c.factors.extend_from_slice(factors);
        c.solution = DomainSolution {
            utilisation,
            latency_s,
        };
        c.valid = true;
        (&c.rates, c.solution)
    }
}

/// True when `b` is elementwise within `tol` relative of `a` (and the
/// factor vectors are identical): the reuse test of the warm solver's
/// tolerance mode. Length changes never pass.
fn within_relative_tolerance(
    a_demands: &[MemDemand],
    a_factors: &[f64],
    b_demands: &[MemDemand],
    b_factors: &[f64],
    tol: f64,
) -> bool {
    if a_demands.len() != b_demands.len() || a_factors != b_factors {
        return false;
    }
    a_demands.iter().zip(b_demands).all(|(a, b)| {
        let bt = (a.base_time_per_instr - b.base_time_per_instr).abs()
            <= tol * a.base_time_per_instr.abs().max(b.base_time_per_instr.abs());
        let mr = (a.miss_ratio - b.miss_ratio).abs()
            <= tol * a.miss_ratio.abs().max(b.miss_ratio.abs()).max(tol);
        bt && mr
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem_cfg() -> MemoryConfig {
        MemoryConfig::default()
    }

    #[test]
    fn llc_no_pressure_below_capacity() {
        let cfg = LlcConfig::default();
        assert_eq!(llc_inflation(0.0, &cfg), 1.0);
        assert_eq!(llc_inflation(10.0, &cfg), 1.0);
        assert_eq!(llc_inflation(25.0, &cfg), 1.0);
    }

    #[test]
    fn llc_inflation_grows_then_caps() {
        let cfg = LlcConfig::default();
        let a = llc_inflation(30.0, &cfg);
        let b = llc_inflation(50.0, &cfg);
        assert!(a > 1.0 && b > a);
        assert_eq!(llc_inflation(10_000.0, &cfg), cfg.max_inflation);
    }

    #[test]
    fn llc_inflation_scaled_at_full_capacity_is_llc_inflation_bitwise() {
        let cfg = LlcConfig::default();
        for ws in [0.0, 10.0, 25.0, 30.0, 50.0, 10_000.0] {
            assert_eq!(
                llc_inflation(ws, &cfg),
                llc_inflation_scaled(ws, &cfg, cfg.capacity_mib),
                "ws {ws}"
            );
        }
    }

    #[test]
    fn llc_inflation_scaled_smaller_slice_inflates_more() {
        let cfg = LlcConfig::default();
        let full = llc_inflation_scaled(20.0, &cfg, cfg.capacity_mib);
        let half = llc_inflation_scaled(20.0, &cfg, cfg.capacity_mib / 2.0);
        assert_eq!(full, 1.0, "20 MiB fits the full 25 MiB cache");
        assert!(half > 1.0, "but overflows a 12.5 MiB slice: {half}");
    }

    #[test]
    fn llc_inflation_scaled_zero_capacity_is_finite() {
        let cfg = LlcConfig::default();
        // An empty cluster with no capacity: no pressure.
        assert_eq!(llc_inflation_scaled(0.0, &cfg, 0.0), 1.0);
        // Any working set against zero capacity caps out.
        assert_eq!(llc_inflation_scaled(1.0, &cfg, 0.0), cfg.max_inflation);
    }

    #[test]
    fn empty_memory_system_is_idle() {
        let s = solve_memory(&[], &mem_cfg());
        assert!(s.rates.is_empty());
        assert_eq!(s.utilisation, 0.0);
        assert_eq!(s.latency_s, mem_cfg().base_latency_s);
    }

    #[test]
    fn single_compute_thread_nearly_unconstrained() {
        // A pure compute thread: essentially no misses.
        let cfg = mem_cfg();
        let d = MemDemand {
            base_time_per_instr: 0.5 / 2.33e9,
            miss_ratio: 1e-5,
        };
        let s = solve_memory(&[d], &cfg);
        let unconstrained = 1.0 / d.base_time_per_instr;
        assert!(s.rates[0] > 0.99 * unconstrained);
        assert!(s.utilisation < 0.01);
    }

    #[test]
    fn memory_thread_is_latency_bound() {
        let cfg = mem_cfg();
        let d = MemDemand {
            base_time_per_instr: 1.0 / 2.33e9,
            miss_ratio: 0.03,
        };
        let s = solve_memory(&[d], &cfg);
        // Achieved rate should be well below pipeline rate.
        assert!(s.rates[0] < 0.5 / d.base_time_per_instr);
        // And consistent with the solved latency.
        let expect = 1.0 / (d.base_time_per_instr + d.miss_ratio * s.latency_s);
        assert!((s.rates[0] - expect).abs() / expect < 0.05);
    }

    #[test]
    fn contention_slows_everyone_memory_threads_most() {
        let cfg = mem_cfg();
        let mem = MemDemand {
            base_time_per_instr: 1.0 / 2.33e9,
            miss_ratio: 0.03,
        };
        let comp = MemDemand {
            base_time_per_instr: 0.6 / 2.33e9,
            miss_ratio: 0.002,
        };
        let alone_mem = solve_memory(&[mem], &cfg).rates[0];
        let alone_comp = solve_memory(&[comp], &cfg).rates[0];
        // 16 memory threads + 16 compute threads contending.
        let mut demands = vec![mem; 16];
        demands.extend(vec![comp; 16]);
        let s = solve_memory(&demands, &cfg);
        let slow_mem = alone_mem / s.rates[0];
        let slow_comp = alone_comp / s.rates[16];
        assert!(slow_mem > 1.5, "memory slowdown {slow_mem}");
        assert!(slow_comp > 1.05, "compute slowdown {slow_comp}");
        assert!(
            slow_mem > slow_comp,
            "memory threads must suffer more: {slow_mem} vs {slow_comp}"
        );
    }

    #[test]
    fn bandwidth_cap_is_respected() {
        let cfg = mem_cfg();
        let d = MemDemand {
            base_time_per_instr: 1.0 / 2.33e9,
            miss_ratio: 0.05,
        };
        let s = solve_memory(&vec![d; 64], &cfg);
        let total_misses: f64 = s.rates.iter().map(|r| r * d.miss_ratio).sum();
        assert!(total_misses <= cfg.bandwidth_accesses_per_sec * 1.0001);
        assert!(s.utilisation <= 1.0);
    }

    #[test]
    fn identical_demands_get_identical_rates() {
        let cfg = mem_cfg();
        let d = MemDemand {
            base_time_per_instr: 1.0 / 1.21e9,
            miss_ratio: 0.03,
        };
        let s = solve_memory(&[d; 8], &cfg);
        for r in &s.rates {
            assert!((r - s.rates[0]).abs() < 1e-6 * s.rates[0]);
        }
    }

    #[test]
    fn faster_core_gets_more_bandwidth_share() {
        // Same miss ratio, one thread on a faster core: it demands more and,
        // under proportional sharing, achieves more.
        let cfg = mem_cfg();
        let fast = MemDemand {
            base_time_per_instr: 1.0 / 2.33e9,
            miss_ratio: 0.03,
        };
        let slow = MemDemand {
            base_time_per_instr: 1.0 / 1.21e9,
            miss_ratio: 0.03,
        };
        let mut demands = vec![fast; 20];
        demands.extend(vec![slow; 20]);
        let s = solve_memory(&demands, &cfg);
        assert!(s.rates[0] > s.rates[20]);
    }

    #[test]
    fn numa_single_domain_local_matches_single_controller_exactly() {
        let cfg = mem_cfg();
        let d1 = MemDemand {
            base_time_per_instr: 1.0 / 2.33e9,
            miss_ratio: 0.03,
        };
        let d2 = MemDemand {
            base_time_per_instr: 0.6 / 1.21e9,
            miss_ratio: 0.002,
        };
        let mut flat = vec![d1; 12];
        flat.extend(vec![d2; 12]);
        let numa: Vec<NumaDemand> = flat
            .iter()
            .map(|&demand| NumaDemand {
                demand,
                home: DomainId(0),
                remote: false,
            })
            .collect();
        let single = solve_memory(&flat, &cfg);
        let multi = solve_memory_numa(&numa, 1, &cfg);
        assert_eq!(single.rates, multi.rates, "one local domain is bit-exact");
        assert_eq!(single.utilisation, multi.domains[0].utilisation);
        assert_eq!(single.latency_s, multi.domains[0].latency_s);
    }

    #[test]
    fn remote_threads_run_slower_than_local() {
        let cfg = mem_cfg();
        let d = MemDemand {
            base_time_per_instr: 1.0 / 2.33e9,
            miss_ratio: 0.03,
        };
        let local = NumaDemand {
            demand: d,
            home: DomainId(0),
            remote: false,
        };
        let remote = NumaDemand {
            remote: true,
            ..local
        };
        let s = solve_memory_numa(&[local, remote], 1, &cfg);
        assert!(
            s.rates[0] > s.rates[1],
            "remote access must cost: {} vs {}",
            s.rates[0],
            s.rates[1]
        );
    }

    #[test]
    fn domains_are_independent_controllers() {
        // 32 heavy threads on one controller saturate it; split across two
        // controllers each side solves as if alone.
        let cfg = mem_cfg();
        let d = MemDemand {
            base_time_per_instr: 1.0 / 2.33e9,
            miss_ratio: 0.05,
        };
        let one_side = solve_memory(&vec![d; 16], &cfg);
        let split: Vec<NumaDemand> = (0..32)
            .map(|i| NumaDemand {
                demand: d,
                home: DomainId((i % 2) as u32),
                remote: false,
            })
            .collect();
        let s = solve_memory_numa(&split, 2, &cfg);
        assert_eq!(s.domains.len(), 2);
        assert_eq!(s.rates[0], one_side.rates[0]);
        assert_eq!(s.domains[0].utilisation, s.domains[1].utilisation);
        // Aggregate throughput may exceed one controller's peak but never
        // the sum of both peaks.
        let total = s.total_miss_throughput(&cfg);
        assert!(total <= 2.0 * cfg.bandwidth_accesses_per_sec * 1.0001);
        assert!(total > cfg.bandwidth_accesses_per_sec * 0.9);
    }

    #[test]
    fn empty_domain_reports_idle() {
        let cfg = mem_cfg();
        let d = NumaDemand {
            demand: MemDemand {
                base_time_per_instr: 1.0 / 2.33e9,
                miss_ratio: 0.01,
            },
            home: DomainId(1),
            remote: false,
        };
        let s = solve_memory_numa(&[d], 4, &cfg);
        assert_eq!(s.domains.len(), 4);
        assert_eq!(s.domains[0].utilisation, 0.0);
        assert_eq!(s.domains[0].latency_s, cfg.base_latency_s);
        assert!(s.domains[1].utilisation > 0.0);
        assert!(s.rates[0] > 0.0);
    }

    #[test]
    fn latency_increases_with_load() {
        let cfg = mem_cfg();
        let d = MemDemand {
            base_time_per_instr: 1.0 / 2.33e9,
            miss_ratio: 0.03,
        };
        let light = solve_memory(&[d], &cfg);
        let heavy = solve_memory(&vec![d; 32], &cfg);
        assert!(heavy.latency_s > light.latency_s);
        assert!(
            heavy.latency_s <= cfg.base_latency_s * 25.0,
            "latency finite"
        );
    }

    fn demand(bt: f64, mr: f64) -> MemDemand {
        MemDemand {
            base_time_per_instr: bt,
            miss_ratio: mr,
        }
    }

    #[test]
    fn warm_solver_exact_mode_matches_cold_solver_bitwise() {
        let cfg = mem_cfg();
        let demands = vec![
            demand(1.0 / 2.33e9, 0.03),
            demand(1.0 / 1.21e9, 0.15),
            demand(1.0 / 2.33e9, 0.002),
        ];
        let factors = vec![1.0, 1.5, 1.0];
        let mut warm = NumaWarmSolver::new(2);
        let mut cold_rates = Vec::new();
        let (cold_util, cold_lat) = solve_memory_scaled(&demands, &factors, &cfg, &mut cold_rates);
        for _ in 0..3 {
            let (rates, sol) = warm.solve(1, &demands, &factors, &cfg);
            assert_eq!(rates, cold_rates.as_slice(), "rates bit-identical");
            assert_eq!(sol.utilisation, cold_util);
            assert_eq!(sol.latency_s, cold_lat);
        }
    }

    #[test]
    fn warm_solver_resolves_on_any_bit_change_in_exact_mode() {
        let cfg = mem_cfg();
        let mut demands = vec![demand(1.0 / 2.33e9, 0.03); 8];
        let factors = vec![1.0; 8];
        let mut warm = NumaWarmSolver::new(1);
        let (_, first) = warm.solve(0, &demands, &factors, &cfg);
        // A tiny (one-ulp-scale) change must still trigger a real re-solve.
        demands[3].miss_ratio = 0.03 + 1e-14;
        let (_, second) = warm.solve(0, &demands, &factors, &cfg);
        let mut cold_rates = Vec::new();
        let (cold_util, _) = solve_memory_scaled(&demands, &factors, &cfg, &mut cold_rates);
        assert_eq!(second.utilisation, cold_util, "exact mode never reuses");
        assert!(first.utilisation > 0.0);
    }

    #[test]
    fn warm_solver_tolerance_mode_reuses_within_band_and_resolves_beyond() {
        let cfg = mem_cfg();
        let base = vec![demand(1.0 / 2.33e9, 0.03); 8];
        let factors = vec![1.0; 8];
        let mut warm = NumaWarmSolver::with_tolerance(1, 1e-3);
        let (_, first) = warm.solve(0, &base, &factors, &cfg);

        // Inside the band: previous solution is held.
        let mut nudged = base.clone();
        nudged[0].miss_ratio *= 1.0 + 1e-6;
        let (_, held) = warm.solve(0, &nudged, &factors, &cfg);
        assert_eq!(held.utilisation, first.utilisation);

        // Beyond the band: a fresh (seeded) solve runs and lands within
        // ~2*REL_TOL of the cold answer.
        let mut moved = base.clone();
        for d in &mut moved {
            d.miss_ratio *= 1.25;
        }
        let (_, resolved) = warm.solve(0, &moved, &factors, &cfg);
        let mut cold_rates = Vec::new();
        let (cold_util, _) = solve_memory_scaled(&moved, &factors, &cfg, &mut cold_rates);
        assert!(resolved.utilisation > first.utilisation);
        let rel = (resolved.utilisation - cold_util).abs() / cold_util.max(1e-12);
        assert!(rel <= 1e-9, "seeded solve within 1e-9 of cold: rel={rel}");
    }

    #[test]
    fn warm_solver_length_change_always_resolves() {
        let cfg = mem_cfg();
        let factors4 = vec![1.0; 4];
        let factors5 = vec![1.0; 5];
        let mut warm = NumaWarmSolver::with_tolerance(1, 0.5);
        let four = vec![demand(1.0 / 2.33e9, 0.03); 4];
        let five = vec![demand(1.0 / 2.33e9, 0.03); 5];
        let (r4, _) = warm.solve(0, &four, &factors4, &cfg);
        assert_eq!(r4.len(), 4);
        let (r5, sol5) = warm.solve(0, &five, &factors5, &cfg);
        assert_eq!(r5.len(), 5);
        let mut cold_rates = Vec::new();
        let (cold_util, _) = solve_memory_scaled(&five, &factors5, &cfg, &mut cold_rates);
        assert_eq!(sol5.utilisation, cold_util, "membership change re-solves");
    }

    #[test]
    fn warm_solver_invalidate_forces_cold_restart() {
        let cfg = mem_cfg();
        let demands = vec![demand(1.0 / 2.33e9, 0.03); 4];
        let factors = vec![1.0; 4];
        let mut warm = NumaWarmSolver::with_tolerance(2, 1e-3);
        let (_, a) = warm.solve(0, &demands, &factors, &cfg);
        warm.invalidate();
        let (_, b) = warm.solve(0, &demands, &factors, &cfg);
        // After invalidation the solve is cold (seed None), so the answer is
        // the plain cold answer bit-for-bit.
        let mut cold_rates = Vec::new();
        let (cold_util, _) = solve_memory_scaled(&demands, &factors, &cfg, &mut cold_rates);
        assert_eq!(b.utilisation, cold_util);
        assert_eq!(a.utilisation, b.utilisation);
        assert_eq!(warm.num_domains(), 2);
        assert_eq!(warm.domain_solution(1), DomainSolution::default());
    }

    #[test]
    fn warm_solver_empty_domain_is_consistent() {
        let cfg = mem_cfg();
        let mut warm = NumaWarmSolver::new(1);
        let (rates, sol) = warm.solve(0, &[], &[], &cfg);
        assert!(rates.is_empty());
        assert_eq!(sol.utilisation, 0.0);
        assert_eq!(sol.latency_s, cfg.base_latency_s);
    }
}
