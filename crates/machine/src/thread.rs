//! Thread specifications and runtime state.

use crate::ids::{AppId, BarrierId, DomainId, SimTime, VCoreId};
use crate::phase::PhaseProgram;
use dike_util::json_struct;

/// Barrier-synchronisation behaviour of a thread (the paper's KMEANS
/// background app "produces excessive inter-thread communication"; we model
/// communication as recurring group barriers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BarrierSpec {
    /// Barrier group this thread belongs to. All members must use the same
    /// interval.
    pub group: BarrierId,
    /// Instructions between consecutive barriers.
    pub interval_instructions: f64,
}

/// Everything the machine needs to know to run one thread.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadSpec {
    /// Application this thread belongs to.
    pub app: AppId,
    /// Application name (for reports; the scheduler never reads it).
    pub app_name: String,
    /// The thread's phase program.
    pub program: PhaseProgram,
    /// Optional barrier synchronisation.
    pub barrier: Option<BarrierSpec>,
}

impl ThreadSpec {
    /// Validate the spec.
    pub fn validate(&self) -> Result<(), String> {
        self.program.validate()?;
        if let Some(b) = &self.barrier {
            if !(b.interval_instructions > 0.0) {
                return Err("barrier interval must be > 0".into());
            }
        }
        Ok(())
    }
}

/// Cumulative hardware-counter values for one thread.
///
/// These are the quantities a scheduler may legitimately observe — the
/// simulated analogue of a per-thread perf-event group.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ThreadCounters {
    /// Instructions retired.
    pub instructions: f64,
    /// LLC misses (equivalently, main-memory accesses — the paper uses the
    /// terms interchangeably for scheduling purposes).
    pub llc_misses: f64,
    /// LLC accesses (loads/stores reaching the shared cache). The paper's
    /// classification boundary — "LLC miss rate more than 10 %" — is
    /// `llc_misses / llc_accesses`.
    pub llc_accesses: f64,
    /// Core cycles elapsed while scheduled (frequency × busy wall time).
    pub cycles: f64,
    /// Wall time spent runnable on a core, in microseconds.
    pub busy_us: u64,
    /// Wall time spent runnable on a core *outside the thread's home NUMA
    /// domain*, in microseconds. Always 0 on single-domain machines.
    pub remote_us: u64,
    /// Number of migrations performed on this thread.
    pub migrations: u64,
}

impl ThreadCounters {
    /// Counter deltas `self - earlier` (for per-quantum rates).
    pub fn delta(&self, earlier: &ThreadCounters) -> ThreadCounters {
        ThreadCounters {
            instructions: self.instructions - earlier.instructions,
            llc_misses: self.llc_misses - earlier.llc_misses,
            llc_accesses: self.llc_accesses - earlier.llc_accesses,
            cycles: self.cycles - earlier.cycles,
            busy_us: self.busy_us - earlier.busy_us,
            remote_us: self.remote_us - earlier.remote_us,
            migrations: self.migrations - earlier.migrations,
        }
    }

    /// LLC miss ratio over these counters (misses / instruction). Returns 0
    /// when no instructions retired.
    pub fn miss_ratio(&self) -> f64 {
        if self.instructions > 0.0 {
            self.llc_misses / self.instructions
        } else {
            0.0
        }
    }

    /// LLC miss *rate* (misses / LLC access) — the paper's classification
    /// quantity. Returns 0 when no accesses were made.
    pub fn llc_miss_rate(&self) -> f64 {
        if self.llc_accesses > 0.0 {
            self.llc_misses / self.llc_accesses
        } else {
            0.0
        }
    }

    /// Instructions per cycle. Returns 0 when no cycles elapsed.
    pub fn ipc(&self) -> f64 {
        if self.cycles > 0.0 {
            self.instructions / self.cycles
        } else {
            0.0
        }
    }
}

/// Cumulative counters for one virtual core.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CoreCounters {
    /// Memory accesses served for threads running on this core.
    pub accesses: f64,
    /// Microseconds during which at least one thread ran on this core.
    pub busy_us: u64,
}

json_struct!(BarrierSpec {
    group,
    interval_instructions,
});
json_struct!(ThreadSpec {
    app,
    app_name,
    program,
    barrier,
});
json_struct!(ThreadCounters {
    instructions,
    llc_misses,
    llc_accesses,
    cycles,
    busy_us,
    remote_us,
    migrations,
});
json_struct!(CoreCounters { accesses, busy_us });

impl CoreCounters {
    /// Counter deltas `self - earlier`.
    pub fn delta(&self, earlier: &CoreCounters) -> CoreCounters {
        CoreCounters {
            accesses: self.accesses - earlier.accesses,
            busy_us: self.busy_us - earlier.busy_us,
        }
    }
}

/// Internal runtime state of all spawned threads, laid out as
/// structure-of-arrays slabs indexed by dense thread id (crate-private).
///
/// The engine's tick loop touches a handful of fields for every runnable
/// thread every millisecond of simulated time; keeping each field in its
/// own contiguous slab means those sweeps walk dense cache lines instead
/// of striding over one large per-thread struct (most of which — the spec,
/// the counters — a given pass never reads). Ids are dense and never
/// reused, so `ThreadId(i)` is always row `i` across every slab.
#[derive(Debug, Clone, Default)]
pub(crate) struct ThreadSlab {
    /// Immutable per-thread specification (app, phase program, barrier).
    pub specs: Vec<ThreadSpec>,
    /// Core each thread is currently pinned to.
    pub vcore: Vec<VCoreId>,
    /// NUMA domain the thread's memory is homed to (first touch: the domain
    /// of the core it was spawned on). Misses always queue there.
    pub home_domain: Vec<DomainId>,
    /// Machine time at which the thread was spawned. Zero for a closed
    /// workload; mid-run arrivals record their actual arrival instant so
    /// fairness can normalise by sojourn time.
    pub spawned_at: Vec<SimTime>,
    /// Instructions retired so far.
    pub retired: Vec<f64>,
    /// Completion time, once finished.
    pub finished_at: Vec<Option<SimTime>>,
    /// The thread makes no progress before this time (migration dead time).
    pub dead_until: Vec<SimTime>,
    /// Elevated miss ratio until this time (cache warm-up after migration).
    pub warmup_until: Vec<SimTime>,
    /// Instruction count of the next barrier, if barrier-synchronised.
    pub next_barrier_at: Vec<f64>,
    /// True while parked at a barrier waiting for the group.
    pub at_barrier: Vec<bool>,
    /// Cumulative counters.
    pub counters: Vec<ThreadCounters>,
}

impl ThreadSlab {
    /// Number of threads ever spawned.
    #[inline]
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True when no thread has been spawned yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Append a freshly spawned thread; its row index is the new dense id.
    pub fn push(
        &mut self,
        spec: ThreadSpec,
        vcore: VCoreId,
        home_domain: DomainId,
        spawned_at: SimTime,
    ) {
        let next_barrier_at = spec
            .barrier
            .map(|b| b.interval_instructions)
            .unwrap_or(f64::INFINITY);
        self.specs.push(spec);
        self.vcore.push(vcore);
        self.home_domain.push(home_domain);
        self.spawned_at.push(spawned_at);
        self.retired.push(0.0);
        self.finished_at.push(None);
        self.dead_until.push(SimTime::ZERO);
        self.warmup_until.push(SimTime::ZERO);
        self.next_barrier_at.push(next_barrier_at);
        self.at_barrier.push(false);
        self.counters.push(ThreadCounters::default());
    }

    /// True once thread `i` has retired all its instructions.
    #[inline]
    pub fn finished(&self, i: usize) -> bool {
        self.finished_at[i].is_some()
    }

    /// True if thread `i` can execute at time `now`: alive, not parked at
    /// a barrier, and not inside migration dead time.
    #[inline]
    pub fn runnable(&self, i: usize, now: SimTime) -> bool {
        !self.finished(i) && !self.at_barrier[i] && now >= self.dead_until[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::{Phase, PhaseProgram};

    fn spec() -> ThreadSpec {
        ThreadSpec {
            app: AppId(0),
            app_name: "test".into(),
            program: PhaseProgram::single(Phase::steady(1.0, 10.0, 4.0, 1e6), 1e7),
            barrier: None,
        }
    }

    #[test]
    fn counters_delta_and_ratios() {
        let a = ThreadCounters {
            instructions: 1000.0,
            llc_misses: 30.0,
            llc_accesses: 300.0,
            cycles: 2000.0,
            busy_us: 10,
            remote_us: 6,
            migrations: 1,
        };
        let b = ThreadCounters {
            instructions: 400.0,
            llc_misses: 10.0,
            llc_accesses: 120.0,
            cycles: 800.0,
            busy_us: 4,
            remote_us: 2,
            migrations: 0,
        };
        let d = a.delta(&b);
        assert_eq!(d.instructions, 600.0);
        assert_eq!(d.llc_misses, 20.0);
        assert_eq!(d.llc_accesses, 180.0);
        assert_eq!(d.remote_us, 4);
        assert_eq!(d.migrations, 1);
        assert!((a.miss_ratio() - 0.03).abs() < 1e-12);
        assert!((a.llc_miss_rate() - 0.1).abs() < 1e-12);
        assert!((a.ipc() - 0.5).abs() < 1e-12);
        assert_eq!(ThreadCounters::default().miss_ratio(), 0.0);
        assert_eq!(ThreadCounters::default().llc_miss_rate(), 0.0);
        assert_eq!(ThreadCounters::default().ipc(), 0.0);
    }

    #[test]
    fn core_counters_delta() {
        let a = CoreCounters {
            accesses: 100.0,
            busy_us: 50,
        };
        let b = CoreCounters {
            accesses: 40.0,
            busy_us: 20,
        };
        let d = a.delta(&b);
        assert_eq!(d.accesses, 60.0);
        assert_eq!(d.busy_us, 30);
    }

    #[test]
    fn new_thread_state_is_runnable() {
        let mut s = ThreadSlab::default();
        assert!(s.is_empty());
        s.push(spec(), VCoreId(0), DomainId(0), SimTime::ZERO);
        assert_eq!(s.len(), 1);
        assert!(s.runnable(0, SimTime::ZERO));
        assert!(!s.finished(0));
        assert_eq!(s.next_barrier_at[0], f64::INFINITY);
        assert_eq!(s.spawned_at[0], SimTime::ZERO);
        assert_eq!(s.retired[0], 0.0);
    }

    #[test]
    fn dead_time_blocks_execution() {
        let mut s = ThreadSlab::default();
        s.push(spec(), VCoreId(0), DomainId(0), SimTime::ZERO);
        s.dead_until[0] = SimTime::from_ms(5);
        assert!(!s.runnable(0, SimTime::from_ms(4)));
        assert!(s.runnable(0, SimTime::from_ms(5)));
    }

    #[test]
    fn barrier_spec_sets_first_barrier() {
        let mut sp = spec();
        sp.barrier = Some(BarrierSpec {
            group: BarrierId(0),
            interval_instructions: 5000.0,
        });
        assert!(sp.validate().is_ok());
        let mut s = ThreadSlab::default();
        s.push(sp, VCoreId(1), DomainId(0), SimTime::ZERO);
        assert_eq!(s.next_barrier_at[0], 5000.0);
    }

    #[test]
    fn invalid_barrier_interval_rejected() {
        let mut sp = spec();
        sp.barrier = Some(BarrierSpec {
            group: BarrierId(0),
            interval_instructions: 0.0,
        });
        assert!(sp.validate().is_err());
    }
}
