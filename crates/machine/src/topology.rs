//! Core topology: physical cores, SMT contexts, and heterogeneity.
//!
//! The paper's testbed is a dual-socket Xeon E5 where one socket runs at
//! maximum frequency (TurboBoost, 2.33 GHz) and the other at minimum
//! (1.21 GHz), with 2-way hyper-threading: 20 physical cores exposing 40
//! virtual cores. [`Topology`] describes such a machine: a list of physical
//! cores, each with a *kind* (its frequency class) and a number of SMT
//! contexts (virtual cores).

use crate::ids::{DomainId, PCoreId, VCoreId};
use dike_util::{json_enum, json_struct};

/// Named frequency class of a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreClass {
    /// High-frequency class (the paper's TurboBoost socket).
    Fast,
    /// Low-frequency class (the paper's minimum-frequency socket).
    Slow,
    /// Anything else (custom topologies).
    Other,
}

/// Frequency class of a physical core.
///
/// The paper builds heterogeneity from two classes only, but nothing in the
/// scheduler restricts the machine to two, so the kind carries its frequency
/// explicitly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreKind {
    /// Named class, e.g. [`CoreClass::Fast`].
    pub class: CoreClass,
    /// Core clock frequency in Hz.
    pub freq_hz: f64,
}

impl CoreKind {
    /// The paper's fast socket: 2.33 GHz (TurboBoost enabled).
    pub const FAST: CoreKind = CoreKind {
        class: CoreClass::Fast,
        freq_hz: 2.33e9,
    };
    /// The paper's slow socket: 1.21 GHz (minimum frequency).
    pub const SLOW: CoreKind = CoreKind {
        class: CoreClass::Slow,
        freq_hz: 1.21e9,
    };

    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self.class {
            CoreClass::Fast => "fast",
            CoreClass::Slow => "slow",
            CoreClass::Other => "other",
        }
    }
}

/// A physical core: one pipeline with `smt_ways` hardware thread contexts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhysicalCore {
    /// Frequency class.
    pub kind: CoreKind,
    /// Number of SMT contexts (1 = no hyper-threading, 2 = the paper's setup).
    pub smt_ways: u32,
}

/// A NUMA domain descriptor used by the multi-domain builders: one memory
/// controller local to a block of physical cores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NumaDomain {
    /// Fast physical cores in the domain.
    pub n_fast: usize,
    /// Slow physical cores in the domain.
    pub n_slow: usize,
    /// SMT contexts per physical core.
    pub smt_ways: u32,
}

json_struct!(NumaDomain {
    n_fast,
    n_slow,
    smt_ways,
});

/// The machine's core topology.
///
/// Virtual cores are numbered densely: physical core `p`'s contexts occupy
/// virtual ids `[first_vcore(p) .. first_vcore(p) + smt_ways)`.
///
/// Every physical core belongs to exactly one NUMA domain (the memory
/// controller its misses are homed to). Single-controller machines — the
/// paper's testbed — put every core in domain 0.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    pcores: Vec<PhysicalCore>,
    /// `vcore_to_pcore[v]` = owning physical core of virtual core `v`.
    vcore_to_pcore: Vec<PCoreId>,
    /// `pcore_first_vcore[p]` = first virtual core id of physical core `p`.
    pcore_first_vcore: Vec<u32>,
    /// `pcore_domain[p]` = NUMA domain of physical core `p`.
    pcore_domain: Vec<DomainId>,
    /// Number of NUMA domains (= memory controllers).
    num_domains: u32,
}

json_enum!(CoreClass { Fast, Slow, Other } {});
json_struct!(CoreKind { class, freq_hz });
json_struct!(PhysicalCore { kind, smt_ways });
json_struct!(Topology {
    pcores,
    vcore_to_pcore,
    pcore_first_vcore,
    pcore_domain,
    num_domains,
});

impl Topology {
    /// Build a single-domain topology from an explicit list of physical cores.
    pub fn new(pcores: Vec<PhysicalCore>) -> Self {
        let n = pcores.len();
        Topology::with_domains(pcores, vec![DomainId(0); n])
    }

    /// Build a topology with an explicit physical-core → NUMA-domain map.
    ///
    /// Domain ids must be dense (`0..num_domains` all occupied).
    pub fn with_domains(pcores: Vec<PhysicalCore>, pcore_domain: Vec<DomainId>) -> Self {
        assert!(!pcores.is_empty(), "topology must have at least one core");
        assert_eq!(
            pcores.len(),
            pcore_domain.len(),
            "one domain id per physical core"
        );
        let mut vcore_to_pcore = Vec::new();
        let mut pcore_first_vcore = Vec::with_capacity(pcores.len());
        for (p, core) in pcores.iter().enumerate() {
            assert!(core.smt_ways >= 1, "a physical core needs >=1 SMT context");
            assert!(core.kind.freq_hz > 0.0, "core frequency must be positive");
            pcore_first_vcore.push(vcore_to_pcore.len() as u32);
            for _ in 0..core.smt_ways {
                vcore_to_pcore.push(PCoreId(p as u32));
            }
        }
        let num_domains = pcore_domain.iter().map(|d| d.0 + 1).max().unwrap_or(1);
        for d in 0..num_domains {
            assert!(
                pcore_domain.iter().any(|x| x.0 == d),
                "domain ids must be dense: domain {d} has no cores"
            );
        }
        Topology {
            pcores,
            vcore_to_pcore,
            pcore_first_vcore,
            pcore_domain,
            num_domains,
        }
    }

    /// A multi-domain machine built from per-domain descriptors: domain `d`'s
    /// cores are laid out contiguously (fast first), in domain order.
    pub fn numa(domains: &[NumaDomain]) -> Self {
        assert!(!domains.is_empty(), "need at least one NUMA domain");
        let mut cores = Vec::new();
        let mut core_domain = Vec::new();
        for (d, dom) in domains.iter().enumerate() {
            cores.extend(std::iter::repeat_n(
                PhysicalCore {
                    kind: CoreKind::FAST,
                    smt_ways: dom.smt_ways,
                },
                dom.n_fast,
            ));
            cores.extend(std::iter::repeat_n(
                PhysicalCore {
                    kind: CoreKind::SLOW,
                    smt_ways: dom.smt_ways,
                },
                dom.n_slow,
            ));
            core_domain.extend(std::iter::repeat_n(
                DomainId(d as u32),
                dom.n_fast + dom.n_slow,
            ));
        }
        Topology::with_domains(cores, core_domain)
    }

    /// `n_domains` copies of the paper's socket mix (`n_fast` + `n_slow`
    /// physical cores per domain, `smt_ways`-way SMT).
    pub fn numa_uniform(n_domains: usize, n_fast: usize, n_slow: usize, smt_ways: u32) -> Self {
        Topology::numa(&vec![
            NumaDomain {
                n_fast,
                n_slow,
                smt_ways,
            };
            n_domains
        ])
    }

    /// A two-class machine: `n_fast` fast + `n_slow` slow physical cores,
    /// each with `smt_ways` contexts. Fast cores come first.
    pub fn two_class(n_fast: usize, n_slow: usize, smt_ways: u32) -> Self {
        let mut cores = Vec::with_capacity(n_fast + n_slow);
        cores.extend(std::iter::repeat_n(
            PhysicalCore {
                kind: CoreKind::FAST,
                smt_ways,
            },
            n_fast,
        ));
        cores.extend(std::iter::repeat_n(
            PhysicalCore {
                kind: CoreKind::SLOW,
                smt_ways,
            },
            n_slow,
        ));
        Topology::new(cores)
    }

    /// A homogeneous machine of `n` cores of `kind` with `smt_ways` contexts.
    pub fn homogeneous(n: usize, kind: CoreKind, smt_ways: u32) -> Self {
        Topology::new(vec![PhysicalCore { kind, smt_ways }; n])
    }

    /// Number of physical cores.
    #[inline]
    pub fn num_pcores(&self) -> usize {
        self.pcores.len()
    }

    /// Number of virtual cores (schedulable contexts).
    #[inline]
    pub fn num_vcores(&self) -> usize {
        self.vcore_to_pcore.len()
    }

    /// Physical core owning a virtual core.
    #[inline]
    pub fn physical_of(&self, v: VCoreId) -> PCoreId {
        self.vcore_to_pcore[v.index()]
    }

    /// Description of a physical core.
    #[inline]
    pub fn pcore(&self, p: PCoreId) -> &PhysicalCore {
        &self.pcores[p.index()]
    }

    /// Frequency class of the physical core behind a virtual core.
    #[inline]
    pub fn kind_of(&self, v: VCoreId) -> CoreKind {
        self.pcores[self.physical_of(v).index()].kind
    }

    /// Clock frequency (Hz) seen by a thread running on virtual core `v`.
    #[inline]
    pub fn freq_of(&self, v: VCoreId) -> f64 {
        self.kind_of(v).freq_hz
    }

    /// First virtual core id of a physical core.
    #[inline]
    pub fn first_vcore(&self, p: PCoreId) -> VCoreId {
        VCoreId(self.pcore_first_vcore[p.index()])
    }

    /// Number of NUMA domains (memory controllers). Always >= 1.
    #[inline]
    pub fn num_domains(&self) -> usize {
        self.num_domains as usize
    }

    /// NUMA domain of a physical core.
    #[inline]
    pub fn domain_of_pcore(&self, p: PCoreId) -> DomainId {
        self.pcore_domain[p.index()]
    }

    /// NUMA domain of a virtual core (its physical core's domain).
    #[inline]
    pub fn domain_of(&self, v: VCoreId) -> DomainId {
        self.pcore_domain[self.physical_of(v).index()]
    }

    /// Iterator over all domain ids.
    pub fn domains(&self) -> impl Iterator<Item = DomainId> + '_ {
        (0..self.num_domains).map(DomainId)
    }

    /// Virtual cores belonging to a domain, in id order.
    pub fn vcores_in_domain(&self, d: DomainId) -> Vec<VCoreId> {
        self.vcores().filter(|&v| self.domain_of(v) == d).collect()
    }

    /// Iterator over all virtual core ids.
    pub fn vcores(&self) -> impl Iterator<Item = VCoreId> + '_ {
        (0..self.num_vcores() as u32).map(VCoreId)
    }

    /// Iterator over all physical core ids.
    pub fn pcores(&self) -> impl Iterator<Item = PCoreId> + '_ {
        (0..self.num_pcores() as u32).map(PCoreId)
    }

    /// The SMT sibling virtual cores of `v` (contexts sharing its pipeline),
    /// excluding `v` itself.
    pub fn siblings_of(&self, v: VCoreId) -> Vec<VCoreId> {
        let p = self.physical_of(v);
        let first = self.pcore_first_vcore[p.index()];
        let ways = self.pcores[p.index()].smt_ways;
        (first..first + ways)
            .map(VCoreId)
            .filter(|&s| s != v)
            .collect()
    }

    /// Maximum core frequency in the machine.
    pub fn max_freq_hz(&self) -> f64 {
        self.pcores
            .iter()
            .map(|c| c.kind.freq_hz)
            .fold(0.0, f64::max)
    }

    /// Minimum core frequency in the machine.
    pub fn min_freq_hz(&self) -> f64 {
        self.pcores
            .iter()
            .map(|c| c.kind.freq_hz)
            .fold(f64::INFINITY, f64::min)
    }

    /// True if every core has the same frequency.
    pub fn is_homogeneous(&self) -> bool {
        (self.max_freq_hz() - self.min_freq_hz()).abs() < f64::EPSILON
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_class_layout_is_dense_and_ordered() {
        let t = Topology::two_class(2, 3, 2);
        assert_eq!(t.num_pcores(), 5);
        assert_eq!(t.num_vcores(), 10);
        // Fast cores first.
        assert_eq!(t.kind_of(VCoreId(0)).label(), "fast");
        assert_eq!(t.kind_of(VCoreId(3)).label(), "fast");
        assert_eq!(t.kind_of(VCoreId(4)).label(), "slow");
        assert_eq!(t.kind_of(VCoreId(9)).label(), "slow");
        // vcores 0,1 share pcore 0.
        assert_eq!(t.physical_of(VCoreId(0)), t.physical_of(VCoreId(1)));
        assert_ne!(t.physical_of(VCoreId(1)), t.physical_of(VCoreId(2)));
    }

    #[test]
    fn siblings_are_symmetric_and_exclude_self() {
        let t = Topology::two_class(1, 1, 2);
        let sib0 = t.siblings_of(VCoreId(0));
        assert_eq!(sib0, vec![VCoreId(1)]);
        let sib1 = t.siblings_of(VCoreId(1));
        assert_eq!(sib1, vec![VCoreId(0)]);
    }

    #[test]
    fn no_smt_means_no_siblings() {
        let t = Topology::two_class(2, 2, 1);
        assert_eq!(t.num_vcores(), 4);
        for v in t.vcores() {
            assert!(t.siblings_of(v).is_empty());
        }
    }

    #[test]
    fn homogeneous_machine_reports_homogeneous() {
        let t = Topology::homogeneous(4, CoreKind::FAST, 2);
        assert!(t.is_homogeneous());
        assert_eq!(t.max_freq_hz(), CoreKind::FAST.freq_hz);
        let het = Topology::two_class(2, 2, 2);
        assert!(!het.is_homogeneous());
        assert_eq!(het.min_freq_hz(), CoreKind::SLOW.freq_hz);
    }

    #[test]
    fn paper_machine_has_forty_vcores() {
        let t = Topology::two_class(10, 10, 2);
        assert_eq!(t.num_vcores(), 40);
        assert_eq!(t.num_pcores(), 20);
        let fast = t
            .vcores()
            .filter(|&v| t.kind_of(v).class == CoreClass::Fast)
            .count();
        assert_eq!(fast, 20);
    }

    #[test]
    fn first_vcore_matches_layout() {
        let t = Topology::two_class(2, 1, 2);
        assert_eq!(t.first_vcore(PCoreId(0)), VCoreId(0));
        assert_eq!(t.first_vcore(PCoreId(1)), VCoreId(2));
        assert_eq!(t.first_vcore(PCoreId(2)), VCoreId(4));
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn empty_topology_panics() {
        let _ = Topology::new(vec![]);
    }

    #[test]
    fn single_domain_by_default() {
        let t = Topology::two_class(10, 10, 2);
        assert_eq!(t.num_domains(), 1);
        for v in t.vcores() {
            assert_eq!(t.domain_of(v), DomainId(0));
        }
        assert_eq!(t.vcores_in_domain(DomainId(0)).len(), 40);
    }

    #[test]
    fn numa_uniform_layout_is_per_domain_contiguous() {
        // 4 domains x (10 fast + 10 slow) x 2-way SMT = 160 vcores.
        let t = Topology::numa_uniform(4, 10, 10, 2);
        assert_eq!(t.num_domains(), 4);
        assert_eq!(t.num_pcores(), 80);
        assert_eq!(t.num_vcores(), 160);
        // Domain d owns vcores [40d, 40d+40); the first half are fast.
        assert_eq!(t.domain_of(VCoreId(0)), DomainId(0));
        assert_eq!(t.domain_of(VCoreId(39)), DomainId(0));
        assert_eq!(t.domain_of(VCoreId(40)), DomainId(1));
        assert_eq!(t.domain_of(VCoreId(159)), DomainId(3));
        assert_eq!(t.kind_of(VCoreId(40)).label(), "fast");
        assert_eq!(t.kind_of(VCoreId(79)).label(), "slow");
        for d in t.domains() {
            let vs = t.vcores_in_domain(d);
            assert_eq!(vs.len(), 40);
            let fast = vs
                .iter()
                .filter(|&&v| t.kind_of(v).class == CoreClass::Fast)
                .count();
            assert_eq!(fast, 20);
        }
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn sparse_domain_ids_panic() {
        let cores = vec![
            PhysicalCore {
                kind: CoreKind::FAST,
                smt_ways: 1,
            };
            2
        ];
        let _ = Topology::with_domains(cores, vec![DomainId(0), DomainId(2)]);
    }
}
