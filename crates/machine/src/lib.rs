//! # dike-machine — a deterministic simulated heterogeneous multicore
//!
//! This crate is the hardware substrate of the Dike reproduction. The paper
//! evaluates its scheduler on a dual-socket Xeon E5 configured as a
//! heterogeneous machine (one socket at 2.33 GHz, one at 1.21 GHz, 2-way
//! SMT, a single memory controller and a 25 MiB shared LLC). That hardware
//! is replaced here by a tick-based simulation exposing exactly the
//! interface a contention-aware OS scheduler uses:
//!
//! * **observation** — per-thread hardware counters (instructions, LLC
//!   misses, cycles) and per-core bandwidth counters;
//! * **actuation** — thread-to-core affinity changes (migrations), with a
//!   realistic cost (dead time + cache warm-up).
//!
//! The contention mechanisms that drive the paper's results are modelled
//! explicitly: shared memory-controller bandwidth with queueing delay,
//! shared-LLC capacity pressure, SMT pipeline sharing, and heterogeneous
//! core frequencies. See `DESIGN.md` at the repository root for the mapping
//! from the paper's testbed to this model.
//!
//! ## Example
//!
//! ```
//! use dike_machine::{Machine, presets, Phase, PhaseProgram, ThreadSpec, AppId, VCoreId, SimTime};
//!
//! let mut machine = Machine::new(presets::small_machine(42));
//! let spec = ThreadSpec {
//!     app: AppId(0),
//!     app_name: "demo".into(),
//!     program: PhaseProgram::single(Phase::steady(1.0, 20.0, 4.0, 1e6), 1e8),
//!     barrier: None,
//! };
//! let t = machine.spawn(spec, VCoreId(0));
//! machine.run_for(SimTime::from_ms(100));
//! let counters = machine.counters(t);
//! assert!(counters.instructions > 0.0);
//! assert!(counters.llc_misses > 0.0);
//! ```

// Validators deliberately use `!(x > 0.0)`-style comparisons: they must
// reject NaN, which plain `x <= 0.0` would silently accept.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod config;
pub mod contention;
pub mod engine;
pub mod faults;
pub mod ids;
pub mod partition;
pub mod phase;
pub mod thread;
pub mod topology;

pub use config::{presets, LlcConfig, MachineConfig, MemoryConfig, MigrationConfig, SmtConfig};
pub use contention::{
    llc_inflation, llc_inflation_scaled, solve_memory, solve_memory_into, solve_memory_numa,
    solve_memory_numa_into, solve_memory_reference, DomainSolution, MemDemand, MemSolution,
    NumaDemand, NumaSolution, NumaWarmSolver,
};
pub use engine::{Machine, MachineEvent};
pub use faults::{FaultConfig, FaultEvent, FaultHasher, FaultKind, FaultPlan, MachineFaultConfig};
pub use ids::{AppId, BarrierId, DomainId, PCoreId, SimTime, ThreadId, VCoreId};
pub use partition::PartitionPlan;
pub use phase::{Phase, PhaseProgram, PhaseRepeat};
pub use thread::{BarrierSpec, CoreCounters, ThreadCounters, ThreadSpec};
