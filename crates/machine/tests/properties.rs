//! Property tests on the machine model's invariants.

use dike_machine::{
    llc_inflation, presets, solve_memory, solve_memory_into, solve_memory_numa,
    solve_memory_reference, AppId, DomainId, LlcConfig, Machine, MemDemand, MemSolution,
    MemoryConfig, NumaDemand, NumaWarmSolver, Phase, PhaseProgram, PhaseRepeat, SimTime,
    ThreadSpec, VCoreId,
};
use dike_util::check::check;
use dike_util::Pcg32;

fn gen_phase(rng: &mut Pcg32) -> Phase {
    let mpki = rng.gen_range(0.1f64..45.0);
    Phase {
        cpi_exec: rng.gen_range(0.3f64..2.0),
        mpki,
        apki: mpki.max(100.0) + 200.0,
        working_set_mib: rng.gen_range(0.1f64..32.0),
        instructions: rng.gen_range(1e6f64..1e9),
        burstiness: rng.gen_range(0.0f64..0.5),
    }
}

fn gen_program(rng: &mut Pcg32) -> PhaseProgram {
    let n_phases = rng.gen_range(1usize..4);
    PhaseProgram {
        phases: (0..n_phases).map(|_| gen_phase(rng)).collect(),
        repeat: PhaseRepeat::LoopFrom(0),
        total_instructions: rng.gen_range(1e7f64..5e8),
    }
}

#[test]
fn threads_always_finish_and_counters_are_consistent() {
    check(
        "threads_always_finish_and_counters_are_consistent",
        32,
        |rng| {
            let n_programs = rng.gen_range(1usize..6);
            let programs: Vec<PhaseProgram> = (0..n_programs).map(|_| gen_program(rng)).collect();
            let seed = rng.gen_range(0u64..1000);

            let mut machine = Machine::new(presets::small_machine(seed));
            let n_vcores = machine.config().topology.num_vcores();
            let mut threads = Vec::new();
            for (i, program) in programs.iter().enumerate() {
                let spec = ThreadSpec {
                    app: AppId(i as u32),
                    app_name: format!("p{i}"),
                    program: program.clone(),
                    barrier: None,
                };
                threads.push(machine.spawn(spec, VCoreId((i % n_vcores) as u32)));
            }
            let done = machine.run_until_done(SimTime::from_secs_f64(600.0));
            assert!(done, "threads did not finish");
            for (t, program) in threads.iter().zip(&programs) {
                let c = machine.counters(*t);
                // Retired exactly the budget (within float tolerance).
                assert!(
                    (c.instructions - program.total_instructions).abs()
                        < 1e-6 * program.total_instructions + 1.0
                );
                // A miss is an access; counters are non-negative and finite.
                assert!(c.llc_misses <= c.llc_accesses + 1e-9);
                assert!(c.llc_misses >= 0.0 && c.cycles >= 0.0);
                assert!(c.instructions.is_finite() && c.llc_misses.is_finite());
                assert!(machine.finish_time(*t).is_some());
                assert!(machine.progress_of(*t) == 1.0);
            }
        },
    );
}

#[test]
fn migrations_never_lose_work() {
    check("migrations_never_lose_work", 32, |rng| {
        let program = gen_program(rng);
        let n_migrations = rng.gen_range(0usize..6);
        let migrate_at_ms: Vec<u64> = (0..n_migrations)
            .map(|_| rng.gen_range(1u64..200))
            .collect();
        let seed = rng.gen_range(0u64..100);

        let mut machine = Machine::new(presets::small_machine(seed));
        let spec = ThreadSpec {
            app: AppId(0),
            app_name: "m".into(),
            program: program.clone(),
            barrier: None,
        };
        let t = machine.spawn(spec, VCoreId(0));
        let mut last = 0.0;
        for (i, at) in migrate_at_ms.iter().enumerate() {
            machine.run_for(SimTime::from_ms(*at));
            let now = machine.counters(t).instructions;
            assert!(now >= last, "instructions went backwards");
            last = now;
            machine.migrate(t, VCoreId(((i + 1) % 8) as u32));
        }
        machine.run_until_done(SimTime::from_secs_f64(600.0));
        let c = machine.counters(t);
        assert!(
            (c.instructions - program.total_instructions).abs()
                < 1e-6 * program.total_instructions + 1.0
        );
        // Migrations requested after completion are no-ops, so the counter
        // is bounded by (not necessarily equal to) the request count.
        assert!(c.migrations as usize <= migrate_at_ms.len());
    });
}

#[test]
fn memory_solver_is_sane() {
    check("memory_solver_is_sane", 32, |rng| {
        let n_demands = rng.gen_range(1usize..48);
        let raw: Vec<(f64, f64)> = (0..n_demands)
            .map(|_| (rng.gen_range(0.2f64..2.0), rng.gen_range(0.0f64..0.06)))
            .collect();
        let bw = rng.gen_range(5e7f64..1e9);

        let cfg = MemoryConfig {
            bandwidth_accesses_per_sec: bw,
            ..MemoryConfig::default()
        };
        let demands: Vec<MemDemand> = raw
            .into_iter()
            .map(|(cpi, mr)| MemDemand {
                base_time_per_instr: cpi / 2.33e9,
                miss_ratio: mr,
            })
            .collect();
        let s = solve_memory(&demands, &cfg);
        assert_eq!(s.rates.len(), demands.len());
        for (rate, d) in s.rates.iter().zip(&demands) {
            assert!(*rate > 0.0 && rate.is_finite());
            // Never faster than the pipeline allows.
            assert!(*rate <= 1.0 / d.base_time_per_instr + 1e-3);
        }
        // Served bandwidth never exceeds the peak.
        let served: f64 = s
            .rates
            .iter()
            .zip(&demands)
            .map(|(r, d)| r * d.miss_ratio)
            .sum();
        assert!(served <= bw * 1.0001, "served {served} > bw {bw}");
        assert!((0.0..=1.0).contains(&s.utilisation));
        assert!(s.latency_s >= cfg.base_latency_s);
    });
}

#[test]
fn memory_solver_early_exit_matches_full_iteration_budget() {
    // The production solver exits the fixed-point loop as soon as the
    // utilisation estimate converges; the reference solver burns the full
    // iteration budget. Across random demand vectors (light, contended
    // and saturated), every achieved rate must agree to 1e-9 relative —
    // i.e. the early exit never truncates a solve prematurely.
    check(
        "memory_solver_early_exit_matches_full_iteration_budget",
        64,
        |rng| {
            let n_demands = rng.gen_range(1usize..64);
            let raw: Vec<(f64, f64)> = (0..n_demands)
                .map(|_| (rng.gen_range(0.2f64..2.5), rng.gen_range(0.0f64..0.08)))
                .collect();
            let bw = rng.gen_range(2e7f64..1.5e9);

            let cfg = MemoryConfig {
                bandwidth_accesses_per_sec: bw,
                ..MemoryConfig::default()
            };
            let demands: Vec<MemDemand> = raw
                .into_iter()
                .map(|(cpi, mr)| MemDemand {
                    base_time_per_instr: cpi / 2.33e9,
                    miss_ratio: mr,
                })
                .collect();
            let fast = solve_memory(&demands, &cfg);
            let full = solve_memory_reference(&demands, &cfg);
            assert_eq!(fast.rates.len(), full.rates.len());
            for (a, b) in fast.rates.iter().zip(&full.rates) {
                assert!(
                    (a - b).abs() <= 1e-9 * b.abs().max(1e-9),
                    "early-exit rate {a} deviates from reference {b}"
                );
            }
            assert!(
                (fast.utilisation - full.utilisation).abs() <= 1e-9,
                "utilisation {} vs {}",
                fast.utilisation,
                full.utilisation
            );
            assert!(
                (fast.latency_s - full.latency_s).abs() <= 1e-9 * full.latency_s,
                "latency {} vs {}",
                fast.latency_s,
                full.latency_s
            );
        },
    );
}

#[test]
fn memory_solver_into_reuses_buffer_and_matches_allocating_path() {
    check(
        "memory_solver_into_reuses_buffer_and_matches_allocating_path",
        32,
        |rng| {
            let cfg = MemoryConfig::default();
            let mut scratch = MemSolution::empty();
            // Several rounds into the same buffer, shrinking and growing.
            for _ in 0..4 {
                let n = rng.gen_range(0usize..48);
                let demands: Vec<MemDemand> = (0..n)
                    .map(|_| MemDemand {
                        base_time_per_instr: rng.gen_range(0.2f64..2.0) / 2.33e9,
                        miss_ratio: rng.gen_range(0.0f64..0.06),
                    })
                    .collect();
                solve_memory_into(&demands, &cfg, &mut scratch);
                let fresh = solve_memory(&demands, &cfg);
                assert_eq!(scratch, fresh, "reused buffer diverged from fresh solve");
            }
        },
    );
}

#[test]
fn numa_solver_with_one_home_domain_matches_single_controller() {
    // A multi-domain memory system in which every demand is homed to one
    // domain and runs locally must reproduce the single-controller solution
    // (the other controllers solve empty systems). Agreement within 1e-9
    // relative is required — in practice it is bit-exact.
    check(
        "numa_solver_with_one_home_domain_matches_single_controller",
        48,
        |rng| {
            let n_demands = rng.gen_range(1usize..48);
            let n_domains = rng.gen_range(1usize..8);
            let home = DomainId(rng.gen_range(0u32..n_domains as u32));
            let raw: Vec<(f64, f64)> = (0..n_demands)
                .map(|_| (rng.gen_range(0.2f64..2.5), rng.gen_range(0.0f64..0.08)))
                .collect();
            let bw = rng.gen_range(2e7f64..1.5e9);

            let cfg = MemoryConfig {
                bandwidth_accesses_per_sec: bw,
                ..MemoryConfig::default()
            };
            let demands: Vec<MemDemand> = raw
                .into_iter()
                .map(|(cpi, mr)| MemDemand {
                    base_time_per_instr: cpi / 2.33e9,
                    miss_ratio: mr,
                })
                .collect();
            let numa_demands: Vec<NumaDemand> = demands
                .iter()
                .map(|&demand| NumaDemand {
                    demand,
                    home,
                    remote: false,
                })
                .collect();
            let single = solve_memory(&demands, &cfg);
            let multi = solve_memory_numa(&numa_demands, n_domains, &cfg);
            assert_eq!(multi.domains.len(), n_domains);
            for (a, b) in multi.rates.iter().zip(&single.rates) {
                assert!(
                    (a - b).abs() <= 1e-9 * b.abs().max(1e-9),
                    "numa rate {a} deviates from single-controller {b}"
                );
            }
            let dom = &multi.domains[home.index()];
            assert!((dom.utilisation - single.utilisation).abs() <= 1e-9);
            assert!((dom.latency_s - single.latency_s).abs() <= 1e-9 * single.latency_s);
            for (d, sol) in multi.domains.iter().enumerate() {
                if d != home.index() {
                    assert_eq!(sol.utilisation, 0.0, "unused controller must be idle");
                }
            }
        },
    );
}

#[test]
fn numa_total_bandwidth_never_exceeds_sum_of_controller_peaks() {
    check(
        "numa_total_bandwidth_never_exceeds_sum_of_controller_peaks",
        48,
        |rng| {
            let n_demands = rng.gen_range(1usize..96);
            let n_domains = rng.gen_range(1usize..8);
            let raw: Vec<(f64, f64, u32, bool)> = (0..n_demands)
                .map(|_| {
                    (
                        rng.gen_range(0.2f64..2.5),
                        rng.gen_range(0.0f64..0.1),
                        rng.gen_range(0u32..n_domains as u32),
                        rng.gen_range(0u32..4) == 0,
                    )
                })
                .collect();
            let bw = rng.gen_range(2e7f64..5e8);

            let cfg = MemoryConfig {
                bandwidth_accesses_per_sec: bw,
                ..MemoryConfig::default()
            };
            let demands: Vec<NumaDemand> = raw
                .into_iter()
                .map(|(cpi, mr, home, remote)| NumaDemand {
                    demand: MemDemand {
                        base_time_per_instr: cpi / 2.33e9,
                        miss_ratio: mr,
                    },
                    home: DomainId(home),
                    remote,
                })
                .collect();
            let s = solve_memory_numa(&demands, n_domains, &cfg);
            // Per-controller served bandwidth respects each controller's peak...
            let mut per_domain = vec![0.0f64; n_domains];
            for (rate, d) in s.rates.iter().zip(&demands) {
                assert!(*rate > 0.0 && rate.is_finite());
                per_domain[d.home.index()] += rate * d.demand.miss_ratio;
            }
            for (served, sol) in per_domain.iter().zip(&s.domains) {
                assert!(*served <= bw * 1.0001, "served {served} > peak {bw}");
                assert!((0.0..=1.0).contains(&sol.utilisation));
                assert!(sol.latency_s >= cfg.base_latency_s);
            }
            // ... so total machine bandwidth never exceeds the sum of peaks.
            let total: f64 = per_domain.iter().sum();
            assert!(
                total <= n_domains as f64 * bw * 1.0001,
                "total {total} > {} * {bw}",
                n_domains
            );
        },
    );
}

#[test]
fn warm_started_solver_tracks_reference_across_perturbation_sequences() {
    // The engine's warm solver re-solves a controller only when its demand
    // vector moves, seeding the fixed point from the previous quantum's
    // utilisation. Across randomized perturbation sequences — small nudges,
    // large jumps, membership growth/shrink — every answer it hands out
    // (including reused ones, in exact mode) must agree with the cold
    // full-budget `solve_memory_reference` to 1e-9 relative.
    check(
        "warm_started_solver_tracks_reference_across_perturbation_sequences",
        48,
        |rng| {
            let n0 = rng.gen_range(1usize..48);
            let bw = rng.gen_range(2e7f64..1.5e9);
            let seq_len = rng.gen_range(2usize..8);
            // Draw the whole perturbation schedule up front so shrinking
            // keeps the draw-sequence shape.
            let mut demands: Vec<MemDemand> = (0..n0)
                .map(|_| MemDemand {
                    base_time_per_instr: rng.gen_range(0.2f64..2.5) / 2.33e9,
                    miss_ratio: rng.gen_range(0.0f64..0.08),
                })
                .collect();
            let mut steps: Vec<Vec<MemDemand>> = Vec::new();
            for _ in 0..seq_len {
                match rng.gen_range(0u32..4) {
                    // Tiny nudge of one element (may round to no-op).
                    0 => {
                        let i = rng.gen_range(0usize..demands.len());
                        let f = 1.0 + rng.gen_range(0.0f64..1e-8);
                        demands[i].miss_ratio *= f;
                    }
                    // Substantial move of a random subset.
                    1 => {
                        for d in demands.iter_mut() {
                            if rng.gen_range(0u32..3) == 0 {
                                d.base_time_per_instr *= rng.gen_range(0.5f64..2.0);
                            }
                        }
                    }
                    // Membership change: add a thread.
                    2 => demands.push(MemDemand {
                        base_time_per_instr: rng.gen_range(0.2f64..2.5) / 2.33e9,
                        miss_ratio: rng.gen_range(0.0f64..0.08),
                    }),
                    // Membership change: drop a thread (keep at least one).
                    _ => {
                        if demands.len() > 1 {
                            let i = rng.gen_range(0usize..demands.len());
                            demands.remove(i);
                        }
                    }
                }
                steps.push(demands.clone());
            }

            let cfg = MemoryConfig {
                bandwidth_accesses_per_sec: bw,
                ..MemoryConfig::default()
            };
            let mut warm = NumaWarmSolver::new(1);
            for step in &steps {
                let factors = vec![1.0; step.len()];
                let (rates, sol) = warm.solve(0, step, &factors, &cfg);
                let reference = solve_memory_reference(step, &cfg);
                assert_eq!(rates.len(), reference.rates.len());
                for (a, b) in rates.iter().zip(&reference.rates) {
                    assert!(
                        (a - b).abs() <= 1e-9 * b.abs().max(1e-9),
                        "warm rate {a} deviates from reference {b}"
                    );
                }
                assert!(
                    (sol.utilisation - reference.utilisation).abs() <= 1e-9,
                    "utilisation {} vs {}",
                    sol.utilisation,
                    reference.utilisation
                );
                assert!(
                    (sol.latency_s - reference.latency_s).abs() <= 1e-9 * reference.latency_s,
                    "latency {} vs {}",
                    sol.latency_s,
                    reference.latency_s
                );
            }
        },
    );
}

#[test]
fn llc_inflation_is_monotone_and_bounded() {
    check("llc_inflation_is_monotone_and_bounded", 32, |rng| {
        let n = rng.gen_range(2usize..10);
        let ws: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0f64..200.0)).collect();

        let cfg = LlcConfig::default();
        let mut sorted = ws.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut last = 0.0;
        for w in sorted {
            let f = llc_inflation(w, &cfg);
            assert!((1.0..=cfg.max_inflation).contains(&f));
            assert!(f >= last - 1e-12, "inflation not monotone");
            last = f;
        }
    });
}

#[test]
fn simulation_is_deterministic() {
    check("simulation_is_deterministic", 32, |rng| {
        let n_programs = rng.gen_range(1usize..4);
        let programs: Vec<PhaseProgram> = (0..n_programs).map(|_| gen_program(rng)).collect();
        let seed = rng.gen_range(0u64..50);
        let ms = rng.gen_range(10u64..300);

        let run_once = || {
            let mut machine = Machine::new(presets::small_machine(seed));
            for (i, p) in programs.iter().enumerate() {
                machine.spawn(
                    ThreadSpec {
                        app: AppId(i as u32),
                        app_name: "d".into(),
                        program: p.clone(),
                        barrier: None,
                    },
                    VCoreId((i % 8) as u32),
                );
            }
            machine.run_for(SimTime::from_ms(ms));
            (0..machine.num_threads())
                .map(|i| machine.counters(dike_machine::ThreadId(i as u32)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run_once(), run_once());
    });
}

/// The fleet-facing reset contract: a machine that already ran a workload
/// and was then `reset()` is behaviourally indistinguishable from a fresh
/// `Machine::new` — same counters, same finish times, same event stream —
/// and `reset_with_seed` is likewise indistinguishable from constructing
/// with that seed.
#[test]
fn reset_machine_is_indistinguishable_from_fresh() {
    check("reset_machine_is_indistinguishable_from_fresh", 16, |rng| {
        let n_programs = rng.gen_range(1usize..4);
        let programs: Vec<PhaseProgram> = (0..n_programs).map(|_| gen_program(rng)).collect();
        let seed = rng.gen_range(0u64..50);
        let reseed = rng.gen_range(50u64..100);
        let ms = rng.gen_range(10u64..200);

        let drive = |machine: &mut Machine| {
            for (i, p) in programs.iter().enumerate() {
                machine.spawn(
                    ThreadSpec {
                        app: AppId(i as u32),
                        app_name: "r".into(),
                        program: p.clone(),
                        barrier: None,
                    },
                    VCoreId((i % 8) as u32),
                );
            }
            machine.run_for(SimTime::from_ms(ms));
            let counters: Vec<_> = (0..machine.num_threads())
                .map(|i| machine.counters(dike_machine::ThreadId(i as u32)))
                .collect();
            (counters, machine.now(), machine.events().to_vec())
        };

        let fresh = drive(&mut Machine::new(presets::small_machine(seed)));
        let fresh_reseeded = drive(&mut Machine::new(presets::small_machine(reseed)));

        // Dirty the machine with a run, then reset and re-drive.
        let mut m = Machine::new(presets::small_machine(seed));
        drive(&mut m);
        m.reset();
        assert_eq!(m.now(), SimTime::from_ms(0));
        assert_eq!(m.num_threads(), 0);
        assert_eq!(drive(&mut m), fresh);

        // Reseeding matches a fresh machine built with the new seed.
        m.reset_with_seed(reseed);
        assert_eq!(m.config().seed, reseed);
        assert_eq!(drive(&mut m), fresh_reseeded);
    });
}
