//! Cross-crate integration tests: the full pipeline from workload
//! definition through machine simulation, scheduling, and metric
//! computation.

use dike_repro::baselines::{Dio, RandomScheduler, SortOnce, StaticSpread};
use dike_repro::dike::Dike;
use dike_repro::machine::{presets, Machine, SimTime};
use dike_repro::metrics::RuntimeMatrix;
use dike_repro::sched_core::{run, RunResult, Scheduler};
use dike_repro::workloads::{paper, Placement};

const SCALE: f64 = 0.08;
const DEADLINE: f64 = 120.0;

fn run_wl(n: usize, sched: &mut dyn Scheduler) -> (RunResult, f64) {
    let mut machine = Machine::new(presets::paper_machine(42));
    let workload = paper::workload(n);
    let spawned = workload.spawn(&mut machine, Placement::Interleaved, SCALE);
    let result = run(&mut machine, sched, SimTime::from_secs_f64(DEADLINE));
    let fairness = RuntimeMatrix::new(
        spawned
            .benchmark_apps()
            .iter()
            .map(|a| result.app_runtimes(a.0))
            .collect(),
    )
    .fairness();
    (result, fairness)
}

#[test]
fn every_scheduler_completes_every_class() {
    for n in [1, 9, 13] {
        let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(StaticSpread::new()),
            Box::new(Dio::new()),
            Box::new(RandomScheduler::new(3)),
            Box::new(SortOnce::new()),
            Box::new(Dike::new()),
            Box::new(Dike::adaptive_fairness()),
            Box::new(Dike::adaptive_performance()),
        ];
        for sched in schedulers.iter_mut() {
            let (result, fairness) = run_wl(n, sched.as_mut());
            assert!(
                result.completed,
                "{} did not complete WL{n}",
                result.scheduler
            );
            assert!(
                (0.0..=1.0).contains(&fairness),
                "{} fairness {fairness} out of range on WL{n}",
                result.scheduler
            );
            assert_eq!(result.threads.len(), 40);
            assert!(result
                .threads
                .iter()
                .all(|t| t.finished_at.is_some() && t.counters.instructions > 0.0));
        }
    }
}

#[test]
fn contention_aware_schedulers_beat_the_baseline_on_fairness() {
    for n in [1, 9, 13] {
        let (_, base) = run_wl(n, &mut StaticSpread::new());
        for (name, fairness) in [
            ("DIO", run_wl(n, &mut Dio::new()).1),
            ("Dike", run_wl(n, &mut Dike::new()).1),
        ] {
            assert!(
                fairness > base,
                "{name} ({fairness:.4}) should beat CFS ({base:.4}) on WL{n}"
            );
        }
    }
}

#[test]
fn dike_swaps_less_than_dio() {
    for n in [1, 13] {
        let (dio, _) = run_wl(n, &mut Dio::new());
        let (dike, _) = run_wl(n, &mut Dike::new());
        assert!(
            dike.swaps < dio.swaps,
            "WL{n}: Dike {} vs DIO {}",
            dike.swaps,
            dio.swaps
        );
    }
}

#[test]
fn random_swapping_is_worse_than_dike() {
    // The sanity floor: informed migration must beat random churn on
    // fairness-per-swap efficiency and on raw fairness.
    let (_, dike_fairness) = run_wl(1, &mut Dike::new());
    let (_, random_fairness) = run_wl(1, &mut RandomScheduler::new(9));
    assert!(
        dike_fairness > random_fairness,
        "Dike {dike_fairness:.4} vs Random {random_fairness:.4}"
    );
}

#[test]
fn runs_are_deterministic_per_seed() {
    let once = |seed: u64| {
        let mut machine = Machine::new(presets::paper_machine(seed));
        paper::workload(6).spawn(&mut machine, Placement::Interleaved, SCALE);
        let mut dike = Dike::new();
        let r = run(&mut machine, &mut dike, SimTime::from_secs_f64(DEADLINE));
        (
            r.wall,
            r.swaps,
            r.threads.iter().map(|t| t.finished_at).collect::<Vec<_>>(),
        )
    };
    assert_eq!(once(7), once(7));
    assert_ne!(once(7), once(8));
}

#[test]
fn adaptation_reaches_per_class_configs() {
    use dike_repro::dike::SchedConfig;
    // UC workload: AF floors the quantum at 200ms with swapSize 16.
    let mut machine = Machine::new(presets::paper_machine(42));
    paper::workload(9).spawn(&mut machine, Placement::Interleaved, SCALE);
    let mut af = Dike::adaptive_fairness();
    run(&mut machine, &mut af, SimTime::from_secs_f64(DEADLINE));
    assert_eq!(
        af.current_config(),
        SchedConfig {
            swap_size: 16,
            quantum_ms: 200
        }
    );
    // Any class: AP raises the quantum to 1000ms.
    let mut machine = Machine::new(presets::paper_machine(42));
    paper::workload(9).spawn(&mut machine, Placement::Interleaved, SCALE);
    let mut ap = Dike::adaptive_performance();
    run(&mut machine, &mut ap, SimTime::from_secs_f64(DEADLINE));
    assert_eq!(ap.current_config().quantum_ms, 1000);
}

#[test]
fn full_cell_results_are_byte_for_byte_deterministic() {
    use dike_repro::experiments::{run_cell, RunOptions, SchedKind};
    // Two runs of the same cell must agree on every serialized byte —
    // fairness, runtimes, swap counts, prediction traces, everything.
    let once = || {
        let opts = RunOptions {
            scale: 0.05,
            deadline_s: DEADLINE,
            placement: Placement::Interleaved,
            seed: 11,
        };
        let cfg = presets::paper_machine(11);
        let cell = run_cell(&cfg, &paper::workload(6), &SchedKind::DikeAf, &opts);
        dike_util::json::to_string(&cell)
    };
    let a = once();
    let b = once();
    assert!(a.contains("\"fairness\""), "serialization lost fields: {a}");
    assert_eq!(a, b, "same seed produced different serialized results");
}

#[test]
fn dike_prediction_errors_stay_bounded_end_to_end() {
    let mut machine = Machine::new(presets::paper_machine(42));
    paper::workload(11).spawn(&mut machine, Placement::Interleaved, SCALE);
    let mut dike = Dike::new();
    run(&mut machine, &mut dike, SimTime::from_secs_f64(DEADLINE));
    let errs = dike.predictor().error_values();
    assert!(!errs.is_empty());
    let mean = errs.iter().sum::<f64>() / errs.len() as f64;
    assert!(mean.abs() < 0.1, "per-quantum mean error {mean:.3}");
    assert!(
        errs.iter().all(|e| e.abs() < 0.8),
        "a per-quantum aggregate error exceeded 80%"
    );
}
