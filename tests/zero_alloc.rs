//! Steady-state allocation discipline of the closed-system driver.
//!
//! The engine core's performance claim is structural: after the first few
//! quanta warm the [`DriverScratch`] buffers, a quantum performs **zero**
//! heap allocations — every per-quantum structure (the `SystemView`, its
//! CSR occupant table, the `Actions` buffer, fault draws, observer and
//! selector working sets) lives in reused storage. This test installs a
//! counting global allocator and measures the allocation delta between
//! consecutive quantum observations.
//!
//! Two policies, two strictness levels:
//!
//! * `Linux-CFS` (StaticSpread) issues no actions, so post-warmup quanta
//!   must allocate **exactly zero** — any regression in the driver or
//!   machine tick path fails here.
//! * `Dike` keeps per-run diagnostics (prediction error history) in
//!   growing `Vec`s, whose amortised doubling is O(log quanta) allocation
//!   events per run, not per quantum. Post-warmup quanta must be zero in
//!   the common case, with a small documented budget for those doublings.

use dike_repro::baselines::StaticSpread;
use dike_repro::dike::Dike;
use dike_repro::machine::{presets, Machine, SimTime};
use dike_repro::sched_core::{run_with_scratch, DriverScratch, Scheduler};
use dike_repro::workloads::{paper, Placement};
use dike_util::CountingAllocator;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

/// Quanta allowed to allocate while the scratch buffers grow to their
/// steady-state sizes (first view build, first observation, first
/// ranking). Everything after must obey the per-policy budget.
const WARMUP_QUANTA: usize = 3;

/// Run WL9 (mixed compute/memory, 40 threads) under `sched`, sampling the
/// allocation counter at every quantum observation; returns the per-quantum
/// allocation-event deltas after warmup.
fn post_warmup_deltas(sched: &mut dyn Scheduler) -> Vec<u64> {
    let mut machine = Machine::new(presets::paper_machine(42));
    paper::workload(9).spawn(&mut machine, Placement::Interleaved, 1.0);
    let mut scratch = DriverScratch::new();
    // Pre-size the sample buffer: pushing within capacity must not
    // allocate, or the probe would perturb the measurement.
    let mut samples: Vec<u64> = Vec::with_capacity(4096);
    let result = run_with_scratch(
        &mut machine,
        sched,
        SimTime::from_secs_f64(120.0),
        |_view| {
            assert!(
                samples.len() < samples.capacity(),
                "sample buffer too small"
            );
            samples.push(ALLOC.allocations());
        },
        &mut scratch,
    );
    assert!(result.completed);
    assert!(
        samples.len() > WARMUP_QUANTA + 10,
        "run too short to measure steady state: {} quanta",
        samples.len()
    );
    samples
        .windows(2)
        .skip(WARMUP_QUANTA)
        .map(|w| w[1] - w[0])
        .collect()
}

#[test]
fn cfs_steady_state_allocates_nothing() {
    let mut sched = StaticSpread::new();
    let deltas = post_warmup_deltas(&mut sched);
    let dirty: Vec<(usize, u64)> = deltas
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d != 0)
        .map(|(i, &d)| (i + WARMUP_QUANTA, d))
        .collect();
    assert!(
        dirty.is_empty(),
        "driver/machine quantum path allocated after warmup: {dirty:?} (quantum, events)"
    );
}

#[test]
fn dike_steady_state_allocates_nothing_beyond_diagnostic_growth() {
    let mut sched = Dike::new();
    let deltas = post_warmup_deltas(&mut sched);
    let total: u64 = deltas.iter().sum();
    let dirty_quanta = deltas.iter().filter(|&&d| d != 0).count();
    // Amortised doubling of the predictor's error-history vectors: a few
    // reallocation events across the whole run, never sustained
    // per-quantum churn.
    assert!(
        total <= 16,
        "Dike allocated {total} events post-warmup across {} quanta (deltas: {:?})",
        deltas.len(),
        deltas.iter().filter(|&&d| d != 0).collect::<Vec<_>>()
    );
    assert!(
        dirty_quanta * 10 <= deltas.len(),
        "allocations in {dirty_quanta}/{} post-warmup quanta — per-quantum churn, not amortised growth",
        deltas.len()
    );
}
