//! Cross-crate property tests: randomly generated workloads must run to
//! completion under every policy with all invariants intact.

use dike_repro::baselines::Dio;
use dike_repro::dike::Dike;
use dike_repro::machine::{presets, Machine, SimTime};
use dike_repro::metrics::RuntimeMatrix;
use dike_repro::sched_core::{run, Scheduler};
use dike_repro::workloads::{random_workload, GeneratorConfig, Placement, WorkloadClass};
use dike_util::check::check;

const CLASSES: [WorkloadClass; 3] = [
    WorkloadClass::Balanced,
    WorkloadClass::UnbalancedCompute,
    WorkloadClass::UnbalancedMemory,
];

#[test]
fn random_workloads_complete_under_dike_and_dio() {
    check("random_workloads_complete_under_dike_and_dio", 8, |rng| {
        let class = CLASSES[rng.gen_range(0usize..CLASSES.len())];
        let seed = rng.gen_range(0u64..200);
        let placement_seed = rng.gen_range(0u64..50);

        let workload = random_workload(class, GeneratorConfig::default(), seed);
        let mut schedulers: Vec<Box<dyn Scheduler>> =
            vec![Box::new(Dike::new()), Box::new(Dio::new())];
        for sched in schedulers.iter_mut() {
            let mut machine = Machine::new(presets::paper_machine(seed));
            let spawned = workload.spawn(&mut machine, Placement::Random(placement_seed), 0.05);
            let result = run(&mut machine, sched.as_mut(), SimTime::from_secs_f64(120.0));
            assert!(
                result.completed,
                "{} stalled on {}",
                result.scheduler, workload.name
            );
            // Counter sanity for every thread.
            for t in &result.threads {
                assert!(t.counters.instructions > 0.0);
                assert!(t.counters.llc_misses <= t.counters.llc_accesses + 1e-9);
                assert!(t.finished_at.unwrap() <= result.wall);
            }
            // Fairness in range.
            let fairness = RuntimeMatrix::new(
                spawned
                    .benchmark_apps()
                    .iter()
                    .map(|a| result.app_runtimes(a.0))
                    .collect(),
            )
            .fairness();
            assert!((0.0..=1.0).contains(&fairness));
            // Swap accounting is consistent: fault-free, every applied
            // migration is either half of a completed swap pair or a
            // unilateral move.
            assert_eq!(
                result.migrations,
                2 * result.swaps + result.unilateral_migrations
            );
            // Dike and DIO only ever issue paired swaps, so fault-free runs
            // have no unilateral migrations.
            assert_eq!(result.unilateral_migrations, 0);
        }
    });
}
