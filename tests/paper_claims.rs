//! The paper's headline claims, checked end to end.
//!
//! Two tiers:
//!
//! * always-on tests at small scale (they run under plain
//!   `cargo test --workspace`) assert the robust shape results;
//! * `full_headline_orderings` reproduces the complete Figure 6 ordering
//!   at a larger scale and is `#[ignore]`d by default — run it with
//!   `cargo test --release --test paper_claims -- --ignored`.
//!
//! EXPERIMENTS.md records the full-scale numbers next to the paper's.

use dike_repro::experiments::{fig6, run_cell, RunOptions, SchedKind};
use dike_repro::machine::presets;
use dike_repro::metrics::geometric_mean;
use dike_repro::workloads::paper;

fn opts(scale: f64) -> RunOptions {
    RunOptions {
        scale,
        deadline_s: (600.0 * scale).max(120.0),
        ..RunOptions::default()
    }
}

fn geomeans(matrix: &[Vec<f64>]) -> Vec<f64> {
    (0..matrix[0].len())
        .map(|s| geometric_mean(&matrix.iter().map(|r| r[s].max(1e-9)).collect::<Vec<_>>()))
        .collect()
}

#[test]
fn light_headline_shape() {
    // One workload per class at small scale.
    let fig = fig6::run_subset(&opts(0.1), &[1, 9, 13]);
    let dike = fig.schedulers.iter().position(|s| s == "Dike").unwrap();
    let dio = fig.schedulers.iter().position(|s| s == "DIO").unwrap();

    // Fairness: every contention-aware policy clearly above the baseline.
    for row in fig.fairness_improvements() {
        for (s, v) in row.iter().enumerate().skip(1) {
            assert!(
                *v > 0.0,
                "{} fairness improvement {v:.4} not positive",
                fig.schedulers[s]
            );
        }
    }
    // Swaps: Dike below DIO on every workload (Table III; paper ratio
    // ~2.7x on average).
    for row in &fig.rows {
        assert!(
            row[dike].swaps < row[dio].swaps,
            "{}: Dike {} vs DIO {}",
            row[dike].workload,
            row[dike].swaps,
            row[dio].swaps
        );
    }
    // Performance: Dike does not lose to the baseline (at small scale the
    // settle phase eats part of the gain; the full-scale ordering is the
    // ignored test below).
    let speed = geomeans(&fig.speedups());
    assert!(
        speed[dike] > 0.98,
        "Dike speedup geomean {:.4}",
        speed[dike]
    );
}

#[test]
fn prediction_error_character() {
    // Paper (Fig 7): average error 0–3%, bounds −9..+10%; spikes occur at
    // phase changes and after app completions (Fig 8). The simulated
    // substrate reproduces the character: most quanta near zero, a small
    // spike tail.
    let o = opts(0.15);
    let cfg = presets::paper_machine(o.seed);
    for n in [1usize, 9, 13] {
        let cell = run_cell(
            &cfg,
            &paper::workload(n),
            &SchedKind::Dike(dike_repro::dike::SchedConfig::DEFAULT),
            &o,
        );
        let errs = &cell.prediction_errors;
        assert!(!errs.is_empty(), "WL{n}: no prediction errors");
        let mut sorted = errs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = sorted[sorted.len() / 2];
        assert!(median.abs() < 0.05, "WL{n}: median error {median:.3}");
        // The paper's band is ±10%; short scaled runs spend a larger
        // fraction of their quanta inside churn/completion transients, so
        // the always-on check uses a ±20% band (the full-scale numbers in
        // EXPERIMENTS.md sit much closer to the paper's).
        let within = errs.iter().filter(|e| e.abs() <= 0.20).count();
        assert!(
            within * 10 >= errs.len() * 7,
            "WL{n}: only {within}/{} quanta within ±20%",
            errs.len()
        );
    }
}

#[test]
fn wl15_is_migration_sensitive() {
    // The paper singles out WL15 (STREAM-heavy): "essentially any
    // migration is going to hurt performance for this workload", and on it
    // neither DIO nor Dike beat the baseline by much. The robust claims:
    // Dike migrates far more sparingly than DIO there (STREAM's 30 MiB
    // working set makes every swap expensive), while matching or beating
    // DIO's fairness.
    let o = opts(0.15);
    let cfg = presets::paper_machine(o.seed);
    let w = paper::workload(15);
    let dio = run_cell(&cfg, &w, &SchedKind::Dio, &o);
    let dike = run_cell(
        &cfg,
        &w,
        &SchedKind::Dike(dike_repro::dike::SchedConfig::DEFAULT),
        &o,
    );
    assert!(
        dike.swaps * 2 < dio.swaps,
        "Dike should migrate sparingly on WL15: {} vs {}",
        dike.swaps,
        dio.swaps
    );
    assert!(
        dike.fairness >= dio.fairness - 0.01,
        "Dike fairness {:.4} vs DIO {:.4} on WL15",
        dike.fairness,
        dio.fairness
    );
}

#[test]
#[ignore = "heavy (~2 min in release): cargo test --release --test paper_claims -- --ignored"]
fn full_headline_orderings() {
    // Eight workloads spanning all classes at a scale where the settle
    // phase is amortised, as in the paper's multi-minute runs.
    let fig = fig6::run_subset(&opts(0.5), &[1, 3, 7, 9, 12, 13, 15, 16]);
    let dike = fig.schedulers.iter().position(|s| s == "Dike").unwrap();
    let dio = fig.schedulers.iter().position(|s| s == "DIO").unwrap();
    let af = fig.schedulers.iter().position(|s| s == "Dike-AF").unwrap();
    let ap = fig.schedulers.iter().position(|s| s == "Dike-AP").unwrap();

    let fairness_ratios: Vec<Vec<f64>> = fig
        .fairness_improvements()
        .iter()
        .map(|r| r.iter().map(|v| 1.0 + v).collect())
        .collect();
    let fair = geomeans(&fairness_ratios);
    let speed = geomeans(&fig.speedups());

    // Figure 6a: fairness gains for all contention-aware policies, with
    // Dike clearly ahead of DIO (paper: +65% vs +47% over the baseline;
    // the simulated substrate compresses the absolute range but preserves
    // the ordering and a ~2x relative gap).
    for s in [dio, dike, af, ap] {
        assert!(
            fair[s] > 1.02,
            "{} fairness ratio {:.4}",
            fig.schedulers[s],
            fair[s]
        );
    }
    assert!(
        fair[dike] > fair[dio],
        "Dike fairness ({:.4}) must exceed DIO's ({:.4})",
        fair[dike],
        fair[dio]
    );
    eprintln!(
        "speed geomeans: DIO={:.4} Dike={:.4} AF={:.4} AP={:.4}",
        speed[dio], speed[dike], speed[af], speed[ap]
    );
    eprintln!(
        "fairness geomeans: DIO={:.4} Dike={:.4} AF={:.4} AP={:.4}",
        fair[dio], fair[dike], fair[af], fair[ap]
    );
    // Figure 6b orderings: every policy nets a speedup; the
    // performance-adaptive Dike is the best-performing policy overall
    // (paper: Dike-AP +12% > Dike +8% > DIO +4%). Plain Dike trades a
    // little mean-runtime speed for its fairness lead and far fewer
    // migrations; see EXPERIMENTS.md for the deviation discussion.
    for s in [dio, dike, af, ap] {
        assert!(
            speed[s] > 1.0,
            "{} speedup geomean {:.4}",
            fig.schedulers[s],
            speed[s]
        );
    }
    assert!(
        speed[ap] + 0.005 >= speed[dio],
        "Dike-AP ({:.4}) should at least match DIO ({:.4})",
        speed[ap],
        speed[dio]
    );
    // Table III: overall swap averages clearly below DIO's.
    let avg =
        |s: usize| fig.rows.iter().map(|r| r[s].swaps as f64).sum::<f64>() / fig.rows.len() as f64;
    assert!(
        avg(dike) * 1.5 < avg(dio),
        "Dike {} vs DIO {}",
        avg(dike),
        avg(dio)
    );
}
