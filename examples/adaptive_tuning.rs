//! Adaptive tuning: watch the Optimizer walk ⟨swapSize, quantaLength⟩.
//!
//! Runs an unbalanced-compute workload under Dike-AF and Dike-AP and
//! prints the configuration trajectory: the fairness goal walks the
//! quantum down its ladder and the swap size up to 16; the performance
//! goal walks the quantum up to 1000 ms (Algorithm 2).
//!
//! ```sh
//! cargo run --release --example adaptive_tuning
//! ```

use dike_repro::dike::Dike;
use dike_repro::machine::{presets, Machine, SimTime};
use dike_repro::sched_core::run_with;
use dike_repro::workloads::{paper, Placement};

fn trajectory(mut dike: Dike) {
    use dike_repro::sched_core::Scheduler;
    let mut machine = Machine::new(presets::paper_machine(11));
    // WL9 is unbalanced-compute: 1 memory app + 3 compute apps + kmeans.
    paper::workload(9).spawn(&mut machine, Placement::Interleaved, 0.25);

    println!("--- {} on WL9 (UC) ---", dike.name());
    let start = dike.current_config();
    println!(
        "  start:        <swapSize={}, quantum={}ms>",
        start.swap_size, start.quantum_ms
    );
    // Count quanta via the observer hook (the driver invokes it per
    // quantum; custom telemetry goes here).
    let mut quanta_seen = 0u64;
    let result = run_with(
        &mut machine,
        &mut dike,
        SimTime::from_secs_f64(600.0),
        |_view| quanta_seen += 1,
    );
    println!(
        "  run: {:.1}s, {} quanta, {} swaps, optimizer steps: {}",
        result.wall.as_secs_f64(),
        result.quanta,
        result.swaps,
        dike.stats().optimizer_steps
    );
    let end = dike.current_config();
    println!(
        "  final config: <swapSize={}, quantum={}ms>",
        end.swap_size, end.quantum_ms
    );
}

fn main() {
    trajectory(Dike::adaptive_fairness());
    trajectory(Dike::adaptive_performance());
    println!(
        "\nDike-AF converges toward the per-class fairness optimum \
         (UC: quantum 200ms, swapSize 16); Dike-AP toward long quanta \
         (1000ms) that minimise migration overhead."
    );
}
