//! QoS co-location: the scenario from the paper's introduction.
//!
//! A latency-sensitive, memory-hungry service (modelled by streamcluster)
//! is co-located with batch compute jobs on a heterogeneous box. Under a
//! contention-oblivious scheduler the service's threads straddle fast and
//! slow cores and finish wildly apart — "unpredictable behavior … may
//! violate QoS guarantees". Dike restores predictability. This example
//! runs the same co-location under Linux-CFS, DIO and Dike and prints each
//! service thread's completion time plus the dispersion.
//!
//! ```sh
//! cargo run --release --example qos_colocation
//! ```

use dike_repro::baselines::{Dio, StaticSpread};
use dike_repro::dike::Dike;
use dike_repro::machine::{presets, Machine, SimTime};
use dike_repro::metrics::coefficient_of_variation;
use dike_repro::sched_core::{run, RunResult, Scheduler};
use dike_repro::workloads::{AppKind, Placement, Workload};

fn colocate(sched: &mut dyn Scheduler) -> RunResult {
    let mut machine = Machine::new(presets::paper_machine(7));
    // The service plus three batch compute jobs and the kmeans background.
    let workload = Workload::with_kmeans(
        "qos",
        vec![
            AppKind::Streamcluster, // the QoS service (app 0)
            AppKind::Leukocyte,
            AppKind::Srad,
            AppKind::Heartwall,
        ],
    );
    workload.spawn(&mut machine, Placement::Interleaved, 0.3);
    run(&mut machine, sched, SimTime::from_secs_f64(600.0))
}

fn report(result: &RunResult) {
    let service: Vec<f64> = result
        .threads
        .iter()
        .filter(|t| t.app == 0)
        .map(|t| {
            t.finished_at
                .map(|f| f.as_secs_f64())
                .unwrap_or(result.wall.as_secs_f64())
        })
        .collect();
    let cv = coefficient_of_variation(&service);
    let p_max = service.iter().copied().fold(0.0, f64::max);
    let p_min = service.iter().copied().fold(f64::INFINITY, f64::min);
    println!(
        "{:<10}  service threads finish {:.2}s..{:.2}s  cv={:.3}  swaps={}",
        result.scheduler, p_min, p_max, cv, result.swaps
    );
}

fn main() {
    println!("QoS service (streamcluster x8) co-located with batch compute jobs\n");
    report(&colocate(&mut StaticSpread::new()));
    report(&colocate(&mut Dio::new()));
    report(&colocate(&mut Dike::new()));
    println!(
        "\nLower cv = the service's threads progress together = predictable \
         completion; Dike achieves it with a fraction of DIO's migrations."
    );
}
