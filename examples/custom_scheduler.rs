//! Extending the framework: write your own contention-aware policy.
//!
//! The `Scheduler` trait is the whole contract: observe counter rates,
//! request migrations. This example implements "MigrateColdest" — a toy
//! policy that each quantum moves the single lowest-IPC thread to the core
//! whose occupant has the highest IPC — and races it against Dike on the
//! same workload.
//!
//! ```sh
//! cargo run --release --example custom_scheduler
//! ```

use dike_repro::dike::Dike;
use dike_repro::machine::{presets, Machine, SimTime};
use dike_repro::metrics::RuntimeMatrix;
use dike_repro::sched_core::{run, Actions, Scheduler, SystemView};
use dike_repro::workloads::{paper, Placement};

/// A deliberately naive policy: swap the lowest-IPC thread with the
/// highest-IPC thread once per quantum. The paper argues IPC misleads on
/// heterogeneous machines — run this to see how much.
struct MigrateColdest;

impl Scheduler for MigrateColdest {
    fn name(&self) -> &str {
        "MigrateColdest"
    }

    fn initial_quantum(&self) -> SimTime {
        SimTime::from_ms(500)
    }

    fn on_quantum(&mut self, view: &SystemView, actions: &mut Actions) {
        if view.threads.len() < 2 {
            return;
        }
        let coldest = view
            .threads
            .iter()
            .min_by(|a, b| a.rates.ipc.partial_cmp(&b.rates.ipc).expect("finite"))
            .expect("non-empty");
        let hottest = view
            .threads
            .iter()
            .max_by(|a, b| a.rates.ipc.partial_cmp(&b.rates.ipc).expect("finite"))
            .expect("non-empty");
        if coldest.id != hottest.id && coldest.vcore != hottest.vcore {
            actions.swap((coldest.id, coldest.vcore), (hottest.id, hottest.vcore));
        }
    }
}

fn race(sched: &mut dyn Scheduler) {
    let mut machine = Machine::new(presets::paper_machine(5));
    let workload = paper::workload(2);
    let spawned = workload.spawn(&mut machine, Placement::Interleaved, 0.25);
    let result = run(&mut machine, sched, SimTime::from_secs_f64(600.0));
    let fairness = RuntimeMatrix::new(
        spawned
            .benchmark_apps()
            .iter()
            .map(|a| result.app_runtimes(a.0))
            .collect(),
    )
    .fairness();
    println!(
        "{:<16} fairness={:.4} wall={:.1}s swaps={}",
        result.scheduler,
        fairness,
        result.wall.as_secs_f64(),
        result.swaps
    );
}

fn main() {
    println!("Custom policy vs Dike on WL2:\n");
    race(&mut MigrateColdest);
    race(&mut Dike::new());
}
