//! Quickstart: build a heterogeneous machine, run a mixed workload under
//! Dike, and read the fairness result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dike_repro::dike::Dike;
use dike_repro::machine::{presets, Machine, SimTime};
use dike_repro::metrics::RuntimeMatrix;
use dike_repro::sched_core::run;
use dike_repro::workloads::{AppKind, Placement, Workload};

fn main() {
    // A small heterogeneous machine: 2 fast + 2 slow physical cores with
    // 2-way SMT (8 schedulable contexts), one shared memory controller.
    let mut machine = Machine::new(presets::small_machine(42));

    // Two applications with opposite demands: jacobi hammers memory,
    // leukocyte lives in the cache. Four threads each, interleaved across
    // the fast and slow cores — the unfair starting point a
    // contention-oblivious balancer produces.
    let mut workload = Workload::plain("quickstart", vec![AppKind::Jacobi, AppKind::Leukocyte]);
    workload.threads_per_app = 4;
    let spawned = workload.spawn(&mut machine, Placement::Interleaved, 0.3);

    // Dike with the paper's default configuration: swapSize 8, 500 ms
    // quanta, fairness threshold 0.1.
    let mut dike = Dike::new();
    let result = run(&mut machine, &mut dike, SimTime::from_secs_f64(600.0));

    println!("completed: {}", result.completed);
    println!("wall time: {:.2}s", result.wall.as_secs_f64());
    println!("quanta:    {}", result.quanta);
    println!(
        "swaps:     {} (migrations: {})",
        result.swaps, result.migrations
    );

    // The paper's fairness metric (Eqn 4): 1 − mean per-app coefficient of
    // variation of thread runtimes.
    let matrix = RuntimeMatrix::new(
        spawned
            .benchmark_apps()
            .iter()
            .map(|a| result.app_runtimes(a.0))
            .collect(),
    );
    println!(
        "fairness:  {:.4} (1.0 = every app's threads finished together)",
        matrix.fairness()
    );

    for t in &result.threads {
        println!(
            "  {}#{}: finished at {:.2}s after {} migration(s)",
            t.app_name,
            t.id.0,
            t.finished_at.map(|f| f.as_secs_f64()).unwrap_or(f64::NAN),
            t.counters.migrations,
        );
    }

    let stats = dike.stats();
    println!(
        "decider: {} pairs proposed, {} rejected by prediction, {} by cooldown",
        stats.pairs_proposed, stats.rejected_profit, stats.rejected_cooldown
    );
}
