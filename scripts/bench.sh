#!/usr/bin/env bash
# Perf-trajectory bench: times the solve_memory hot path, the 33-cell
# configuration sweep (serial vs parallel), the NUMA scale sweep, the
# open-system cell, the fault-injected robustness cell and the
# cache-partitioning cell, recording the numbers into
# results/BENCH_sweep.json, results/BENCH_scale.json,
# results/BENCH_open.json, results/BENCH_robustness.json and
# results/BENCH_cachepart.json so regressions are visible release over
# release.
#
# Usage:
#   scripts/bench.sh            # full run, records results/BENCH_*.json
#   DIKE_BENCH_FAST=1 scripts/bench.sh
#                               # smoke mode: tiny sample counts and scale,
#                               # writes to target/ only (no recorded file
#                               # is overwritten by a smoke run)
#   DIKE_THREADS=8 scripts/bench.sh
#                               # pin the parallel sweep's worker count
set -euo pipefail
cd "$(dirname "$0")/.."

# cargo bench runs the binary from the package directory, so the output
# paths must be absolute.
if [[ "${DIKE_BENCH_FAST:-0}" == "1" ]]; then
    out_sweep="$PWD/target/BENCH_sweep_smoke.json"
    out_scale="$PWD/target/BENCH_scale_smoke.json"
    out_open="$PWD/target/BENCH_open_smoke.json"
    out_robustness="$PWD/target/BENCH_robustness_smoke.json"
    out_cachepart="$PWD/target/BENCH_cachepart_smoke.json"
    out_fleet="$PWD/target/BENCH_fleet_smoke.json"
    out_failover="$PWD/target/BENCH_failover_smoke.json"
    export DIKE_BENCH_SAMPLES="${DIKE_BENCH_SAMPLES:-3}"
    export DIKE_BENCH_WARMUP_MS="${DIKE_BENCH_WARMUP_MS:-20}"
    export DIKE_BENCH_SAMPLE_MS="${DIKE_BENCH_SAMPLE_MS:-20}"
else
    out_sweep="$PWD/results/BENCH_sweep.json"
    out_scale="$PWD/results/BENCH_scale.json"
    out_open="$PWD/results/BENCH_open.json"
    out_robustness="$PWD/results/BENCH_robustness.json"
    out_cachepart="$PWD/results/BENCH_cachepart.json"
    out_fleet="$PWD/results/BENCH_fleet.json"
    out_failover="$PWD/results/BENCH_failover.json"
fi

DIKE_BENCH_JSON="$out_sweep" cargo bench -q --offline -p dike-bench --bench sweep_parallel
DIKE_BENCH_JSON="$out_scale" cargo bench -q --offline -p dike-bench --bench scale
DIKE_BENCH_JSON="$out_open" cargo bench -q --offline -p dike-bench --bench open
DIKE_BENCH_JSON="$out_robustness" cargo bench -q --offline -p dike-bench --bench robustness
DIKE_BENCH_JSON="$out_cachepart" cargo bench -q --offline -p dike-bench --bench cachepart
# One headline-fleet lap simulates >1M thread-arrivals (~10s), and the
# full-mode run adds the 1024-machine wide lap on top; three samples
# bound the recording run without hurting the median.
DIKE_BENCH_JSON="$out_fleet" DIKE_BENCH_SAMPLES="${DIKE_BENCH_SAMPLES:-3}" \
    cargo bench -q --offline -p dike-bench --bench fleet
# The failover pair (blind vs health-aware at the harshest fault cell)
# also records its `lost` counts — the recorded fault-tolerance claim.
DIKE_BENCH_JSON="$out_failover" cargo bench -q --offline -p dike-bench --bench failover

echo "bench: OK ($out_sweep, $out_scale, $out_open, $out_robustness, $out_cachepart, $out_fleet, $out_failover)"
