#!/usr/bin/env bash
# Golden-drift gate: replay the golden-fixture regression suite (the
# closed-sweep, fig6, table3, robustness, cachepart and failover
# artefacts serialized under
# crates/experiments/tests/fixtures/) and then prove that no recorded
# artefact — results/ or the goldens themselves — differs from what is
# committed. A behaviour change to any recorded figure must arrive as an
# explicit re-baseline (DIKE_REGEN_GOLDENS=1 + a commit that shows the
# diff), never as a silent side effect of a refactor.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo test -q --offline -p dike-experiments --test golden_stability

if ! git diff --exit-code -- results/ crates/experiments/tests/fixtures/; then
    echo "golden_check: FAIL — recorded artefacts drifted (see diff above)." >&2
    echo "If the change is intentional, re-baseline and commit the diff." >&2
    exit 1
fi

echo "golden_check: OK"
