#!/usr/bin/env bash
# Offline-purity guard: the workspace must build with zero crates.io
# dependencies (everything lives under crates/, with dike-util standing in
# for the usual external crates). Fail if any workspace manifest
# reintroduces a registry dependency — i.e. a dependency entry that
# neither declares `path = ...` nor inherits a workspace path dependency
# via `workspace = true`.
set -euo pipefail
cd "$(dirname "$0")/.."

bad=$(awk '
    /^\[/ { in_dep = ($0 ~ /dependencies[].]/) }
    in_dep && /^[[:space:]]*[A-Za-z0-9_-]+[[:space:]]*=/ {
        if ($0 !~ /path[[:space:]]*=/ && $0 !~ /workspace[[:space:]]*=[[:space:]]*true/)
            print FILENAME ": " $0
    }
' Cargo.toml crates/*/Cargo.toml)

if [[ -n "$bad" ]]; then
    echo "offline_guard: registry dependencies are not allowed:"
    echo "$bad"
    exit 1
fi
echo "offline_guard: OK"
