#!/usr/bin/env bash
# Bench regression check: run the smoke benches and compare their medians
# against the committed results/BENCH_*.json references.
#
# Smoke mode runs the same hot paths at equal-or-smaller workload scales,
# so each smoke median should come in at or below the recorded full-run
# median; a median more than DIKE_BENCH_TOLERANCE× (default 3×) above the
# reference fails the check. The tolerance absorbs host differences and
# smoke-mode noise — rationale in EXPERIMENTS.md. CI runs this as a
# separate non-blocking job: a trip is a signal to investigate, not a
# merge gate.
set -euo pipefail
cd "$(dirname "$0")/.."

DIKE_BENCH_FAST=1 scripts/bench.sh

cargo build -q --offline -p dike-bench --bin bench_check
check=target/debug/bench_check

fail=0

# Completeness: every committed reference must be exercised by the smoke
# run. Each results/BENCH_<name>.json needs a target/BENCH_<name>_smoke
# counterpart, and bench_check itself exits non-zero when the two files
# share no rows — so a renamed or dropped bench cannot silently slip out
# of the gate while its recorded reference rots.
refs=(results/BENCH_*.json)
if [[ ! -e "${refs[0]}" ]]; then
    echo "bench_check: no results/BENCH_*.json references found"
    exit 1
fi
for ref in "${refs[@]}"; do
    name=$(basename "$ref")
    name=${name#BENCH_}
    name=${name%.json}
    smoke="target/BENCH_${name}_smoke.json"
    if [[ ! -f "$smoke" ]]; then
        echo "bench_check: reference $ref has no smoke run ($smoke missing)"
        fail=1
        continue
    fi
    "$check" "$smoke" "$ref" || fail=1
done

# Row-presence checks for rows whose absence bench_check would SKIP
# silently. Every scale row up to the 1040-vcore cell must be covered by
# the smoke run…
for row in 1dom_40c 4dom_160c 8dom_320c 16dom_640c 26dom_1040c; do
    if ! grep -q "\"scale/dike_$row\"" target/BENCH_scale_smoke.json; then
        echo "bench_check: scale smoke is missing row $row"
        fail=1
    fi
done
# …the smoke fleet row must guard the recorded fleet reference, and the
# reference itself must still carry the headline >1M-arrival row and the
# 1024-machine wide row (both full mode only, so the smoke file never
# has them).
if ! grep -q '"fleet/dike_8m_12t"' target/BENCH_fleet_smoke.json; then
    echo "bench_check: fleet smoke is missing row fleet/dike_8m_12t"
    fail=1
fi
if ! grep -q '"fleet/dike_64m_96t"' results/BENCH_fleet.json; then
    echo "bench_check: fleet reference lost the headline row fleet/dike_64m_96t"
    fail=1
fi
if ! grep -q '"fleet/dike_1024m_quick"' results/BENCH_fleet.json; then
    echo "bench_check: fleet reference lost the wide row fleet/dike_1024m_quick"
    fail=1
fi
# The cachepart smoke must exercise the hybrid (both actuators live in
# one cell) on both mixes, and the recorded reference must keep carrying
# the hybrid-vs-Dike fairness comparison rows.
for row in wl1_dike wl1_dike_lfoc wl13_dike wl13_dike_lfoc; do
    if ! grep -q "\"cachepart/$row\"" target/BENCH_cachepart_smoke.json; then
        echo "bench_check: cachepart smoke is missing row $row"
        fail=1
    fi
    if ! grep -q "\"cachepart/$row\"" results/BENCH_cachepart.json; then
        echo "bench_check: cachepart reference lost row $row"
        fail=1
    fi
done
# The failover pair must stay present in both the smoke run and the
# recorded reference: the reference's `lost` extras are the recorded
# fault-tolerance claim (blind loses work, failover recovers it), so
# losing a row silently would unrecord the claim.
for row in quick_nofail quick_fail; do
    if ! grep -q "\"failover/$row\"" target/BENCH_failover_smoke.json; then
        echo "bench_check: failover smoke is missing row $row"
        fail=1
    fi
    if ! grep -q "\"failover/$row\"" results/BENCH_failover.json; then
        echo "bench_check: failover reference lost row $row"
        fail=1
    fi
done

if [[ "$fail" != 0 ]]; then
    echo "bench_check: FAIL"
    exit 1
fi
echo "bench_check: OK"
