#!/usr/bin/env bash
# Bench regression check: run the smoke benches and compare their medians
# against the committed results/BENCH_*.json references.
#
# Smoke mode runs the same hot paths at equal-or-smaller workload scales,
# so each smoke median should come in at or below the recorded full-run
# median; a median more than DIKE_BENCH_TOLERANCE× (default 3×) above the
# reference fails the check. The tolerance absorbs host differences and
# smoke-mode noise — rationale in EXPERIMENTS.md. CI runs this as a
# separate non-blocking job: a trip is a signal to investigate, not a
# merge gate.
set -euo pipefail
cd "$(dirname "$0")/.."

DIKE_BENCH_FAST=1 scripts/bench.sh

cargo build -q --offline -p dike-bench --bin bench_check
check=target/debug/bench_check

fail=0
"$check" target/BENCH_sweep_smoke.json results/BENCH_sweep.json || fail=1
"$check" target/BENCH_scale_smoke.json results/BENCH_scale.json || fail=1
# Every scale row up to the 1040-vcore cell must be covered by the smoke
# run — a missing row would otherwise SKIP silently inside bench_check.
for row in 1dom_40c 4dom_160c 8dom_320c 16dom_640c 26dom_1040c; do
    if ! grep -q "\"scale/dike_$row\"" target/BENCH_scale_smoke.json; then
        echo "bench_check: scale smoke is missing row $row"
        fail=1
    fi
done
"$check" target/BENCH_open_smoke.json results/BENCH_open.json || fail=1
"$check" target/BENCH_robustness_smoke.json results/BENCH_robustness.json || fail=1

if [[ "$fail" != 0 ]]; then
    echo "bench_check: FAIL"
    exit 1
fi
echo "bench_check: OK"
