#!/usr/bin/env bash
# Full offline verification: build, test and lint the whole workspace
# without touching the network. This is the CI entry point; it must pass
# on a machine with no crates.io access (the workspace has no external
# dependencies — everything lives in crates/util).
#
# Each step is timed and named: on failure the script prints exactly
# which step broke and how long the run had been going, so a CI log read
# starts at the answer instead of a scrollback hunt.
set -euo pipefail
cd "$(dirname "$0")/.."

total_t0=$SECONDS

# Run one named verification step, timing it and failing fast with the
# step's name on a non-zero exit.
step() {
    local name=$1
    shift
    local t0=$SECONDS
    echo "==> $name"
    if ! "$@"; then
        echo "verify: FAIL in step '$name' after $((SECONDS - t0))s," \
             "$((SECONDS - total_t0))s into the run" >&2
        exit 1
    fi
    echo "<== $name: OK ($((SECONDS - t0))s)"
}

# Offline purity: no manifest may reintroduce a crates.io dependency.
step "offline-guard" scripts/offline_guard.sh

step "fmt" cargo fmt --all -- --check
step "build" cargo build --release --offline --workspace --all-targets
step "test" cargo test -q --offline --workspace
step "clippy" cargo clippy --offline --workspace --all-targets -- -D warnings

# Parallel-driver smoke: the pooled sweeps — closed, open-system and the
# fleet roll-up — must stay byte-identical to the serial path when
# actually running on multiple workers.
step "parallel-determinism (DIKE_THREADS=2)" \
    env DIKE_THREADS=2 cargo test -q --offline -p dike-experiments --test parallel_determinism

# Allocation discipline: post-warmup quanta of the closed driver must not
# allocate (counting global allocator, tests/zero_alloc.rs). The workspace
# test run above already covers this; the named re-run makes a regression
# fail loudly as its own step.
step "zero-alloc" cargo test -q --offline -p dike-repro --test zero_alloc

# Robustness smoke: the fault-injection degradation sweep end to end at a
# tiny scale — every policy must survive every swept fault level (no
# panics, no NaN) with the hardened pipeline in the comparison set.
step "robustness-smoke" bash -c \
    'cargo run -q --release --offline -p dike-experiments --bin robustness -- --scale 0.02 > /dev/null'

# Fleet smoke: the 8-machine multi-tenant fleet end to end — dispatch
# pre-pass, per-machine open runs, fleet-wide fairness roll-up.
step "fleet-smoke" bash -c \
    'cargo run -q --release --offline -p dike-experiments --bin fleet -- --quick > /dev/null'

# Failover smoke: the epoch-driven fault-tolerant fleet at the harshest
# swept fault cell, both dispatchers — health barriers, quarantine,
# orphan re-dispatch and the conservation ledger (asserted per cell).
step "failover-smoke" bash -c \
    'cargo run -q --release --offline -p dike-experiments --bin failover -- --quick > /dev/null'

# Cache-partitioning smoke: both actuators end to end at a tiny scale —
# LFOC classification and plan building, the engine's partitioned
# contention solve, and the partition actuation channel, across clean and
# faulted cells for all five policies.
step "cachepart-smoke" bash -c \
    'cargo run -q --release --offline -p dike-experiments --bin cachepart -- --scale 0.02 > /dev/null'

# Golden drift: replay the golden-fixture suite and prove the committed
# results/ artefacts are byte-identical to the working tree.
step "golden-check" scripts/golden_check.sh

# Bench smoke: the bench targets must run end to end (tiny samples, writes
# to target/, never touches the recorded results/BENCH_*.json).
step "bench-smoke" bash -c 'DIKE_BENCH_FAST=1 scripts/bench.sh'

# The smoke must include the largest NUMA scale cell (26 controllers, 1040
# vcores): its presence proves the hierarchical selection and warm-started
# contention-solve pipeline drives the full-size machine end to end.
step "scale-smoke-coverage" grep -q '"scale/dike_26dom_1040c"' target/BENCH_scale_smoke.json

# …and the hybrid cache-partitioning cell, proving the second actuator
# (plan build → fault channel → partitioned contention solve) runs under
# the bench harness too.
step "cachepart-smoke-coverage" grep -q '"cachepart/wl1_dike_lfoc"' target/BENCH_cachepart_smoke.json

# …and the failover pair, proving the fault-tolerant loop runs under the
# bench harness with both dispatchers.
step "failover-smoke-coverage" grep -q '"failover/quick_fail"' target/BENCH_failover_smoke.json

# Long-churn soak (NON-BLOCKING): the fleet under worst-case per-machine
# faults plus heavy machine-scope crash/brownout churn, both dispatchers,
# a 30 s arrival window. Conservation is asserted inside the run; a trip
# here is a signal to investigate, not a merge gate (the blocking
# equivalents run at smaller scale in the test suite above).
soak_t0=$SECONDS
echo "==> failover-soak (non-blocking)"
if cargo run -q --release --offline -p dike-experiments --bin failover -- --soak > /dev/null; then
    echo "<== failover-soak: OK ($((SECONDS - soak_t0))s)"
else
    echo "<== failover-soak: FAILED (non-blocking, $((SECONDS - soak_t0))s) — investigate" >&2
fi

echo "verify: OK ($((SECONDS - total_t0))s total)"
