#!/usr/bin/env bash
# Full offline verification: build, test and lint the whole workspace
# without touching the network. This is the CI entry point; it must pass
# on a machine with no crates.io access (the workspace has no external
# dependencies — everything lives in crates/util).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace --all-targets
cargo test -q --offline --workspace
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "verify: OK"
