#!/usr/bin/env bash
# Full offline verification: build, test and lint the whole workspace
# without touching the network. This is the CI entry point; it must pass
# on a machine with no crates.io access (the workspace has no external
# dependencies — everything lives in crates/util).
set -euo pipefail
cd "$(dirname "$0")/.."

# Offline purity: no manifest may reintroduce a crates.io dependency.
scripts/offline_guard.sh

cargo fmt --all -- --check
cargo build --release --offline --workspace --all-targets
cargo test -q --offline --workspace
cargo clippy --offline --workspace --all-targets -- -D warnings

# Parallel-driver smoke: the pooled sweeps — closed and the open-system
# experiment — must stay byte-identical to the serial path when actually
# running on multiple workers.
DIKE_THREADS=2 cargo test -q --offline -p dike-experiments --test parallel_determinism

# Allocation discipline: post-warmup quanta of the closed driver must not
# allocate (counting global allocator, tests/zero_alloc.rs). The workspace
# test run above already covers this; the named re-run makes a regression
# fail loudly as its own step.
cargo test -q --offline -p dike-repro --test zero_alloc

# Robustness smoke: the fault-injection degradation sweep end to end at a
# tiny scale — every policy must survive every swept fault level (no
# panics, no NaN) with the hardened pipeline in the comparison set.
cargo run -q --release --offline -p dike-experiments --bin robustness -- --scale 0.02 > /dev/null

# Bench smoke: the bench targets must run end to end (tiny samples, writes
# to target/, never touches the recorded results/BENCH_*.json).
DIKE_BENCH_FAST=1 scripts/bench.sh

# The smoke must include the largest NUMA scale cell (26 controllers, 1040
# vcores): its presence proves the hierarchical selection and warm-started
# contention-solve pipeline drives the full-size machine end to end.
grep -q '"scale/dike_26dom_1040c"' target/BENCH_scale_smoke.json

echo "verify: OK"
