#!/bin/bash
# Regenerates every paper artefact; outputs under results/.
set -x
cd /root/repo
B=target/release
cargo build --release -p dike-experiments
$B/fig6a --scale 1.0 > results/fig6a.txt 2>&1
$B/fig6b --scale 1.0 > results/fig6b.txt 2>&1
$B/table3 --scale 1.0 > results/table3.txt 2>&1
$B/fig7 --scale 1.0 > results/fig7.txt 2>&1
$B/fig8 --scale 1.0 > results/fig8.txt 2>&1
$B/fig1 --scale 1.0 > results/fig1.txt 2>&1
$B/fig2 --scale 0.3 > results/fig2.txt 2>&1
$B/fig4 --scale 0.3 > results/fig4.txt 2>&1
$B/fig5 --scale 0.3 2 > results/fig5.txt 2>&1
$B/ablations --scale 0.5 1 9 13 > results/ablations.txt 2>&1
echo ALL_EXPERIMENTS_DONE
